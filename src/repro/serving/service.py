"""The selectivity-serving front-end.

:class:`SelectivityService` is what the engine (and any outside client)
talks to.  It composes the rest of the subsystem:

* reads — :meth:`SelectivityService.estimate` and
  :meth:`SelectivityService.estimate_batch` resolve the current
  :class:`~repro.serving.snapshot.ModelSnapshot` from the
  :class:`~repro.serving.registry.EstimatorRegistry`, consult the
  version-scoped :class:`~repro.serving.cache.EstimateCache`, and evaluate
  misses against the immutable snapshot (batch misses through one
  vectorised kernel call).  Reads never block on training.
* writes — :meth:`SelectivityService.observe` appends feedback to the
  model's mutable trainer, tracks the served-vs-true error, and asks the
  :class:`~repro.serving.policy.RefitPolicy` whether a refit is due; due
  refits run on the :class:`~repro.serving.scheduler.RefitScheduler`
  (background by default) and publish a fresh snapshot version, which
  invalidates the cache for that model.
  :meth:`SelectivityService.apply_feedback` is the batch/deferred variant
  of the same path: already-priced observations absorbed under one lock
  acquisition, optionally non-blocking — the replay target for the
  cluster's :class:`~repro.cluster.buffer.ObservationBuffer`.
* metrics — every call is recorded on a
  :class:`~repro.serving.stats.ServingStats`.

The batch-API contract: ``estimate_batch(table, predicates)`` returns an
``np.ndarray`` elementwise equal (to < 1e-9) to calling ``estimate`` per
predicate against the *same* snapshot version, in input order.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Sequence

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.core.predicate import Predicate
from repro.core.quicksel import QuickSel
from repro.core.region import Region
from repro.exceptions import ServingError
from repro.serving.cache import EstimateCache, predicate_cache_key
from repro.serving.policy import RefitDecision, RefitPolicy
from repro.serving.registry import EstimatorRegistry, ModelKey, normalize_key
from repro.serving.scheduler import RefitScheduler
from repro.serving.snapshot import ModelSnapshot
from repro.serving.stats import ServingStats

__all__ = ["SelectivityService"]

PredicateLike = Predicate | Hyperrectangle | Region


class _ServedModel:
    """Mutable per-key state: the trainer and its feedback bookkeeping."""

    __slots__ = ("key", "trainer", "lock", "pending", "errors")

    def __init__(self, key: ModelKey, trainer: QuickSel, error_window: int) -> None:
        self.key = key
        self.trainer = trainer
        self.lock = threading.RLock()
        self.pending = 0
        self.errors: deque[float] = deque(maxlen=error_window)


class SelectivityService:
    """Versioned, cached, batch-capable selectivity estimation service."""

    def __init__(
        self,
        registry: EstimatorRegistry | None = None,
        cache: EstimateCache | None = None,
        policy: RefitPolicy | None = None,
        scheduler: RefitScheduler | None = None,
        stats: ServingStats | None = None,
    ) -> None:
        # `is not None` rather than `or`: an injected empty cache is
        # falsy (it has __len__), and `or` would silently replace it
        # with a default-capacity one.
        self._registry = registry if registry is not None else EstimatorRegistry()
        self._cache = cache if cache is not None else EstimateCache()
        self._policy = policy if policy is not None else RefitPolicy()
        self._owns_scheduler = scheduler is None
        self._scheduler = scheduler if scheduler is not None else RefitScheduler()
        self._stats = stats if stats is not None else ServingStats()
        self._served: dict[ModelKey, _ServedModel] = {}
        self._lock = threading.RLock()
        self._closed = False
        self._registry.add_listener(self._on_publish)

    # ------------------------------------------------------------------
    # Composition surface
    # ------------------------------------------------------------------
    @property
    def registry(self) -> EstimatorRegistry:
        """The snapshot registry this service serves from."""
        return self._registry

    @property
    def cache(self) -> EstimateCache:
        """The shared estimate result cache."""
        return self._cache

    @property
    def policy(self) -> RefitPolicy:
        """The refit-trigger policy."""
        return self._policy

    @property
    def scheduler(self) -> RefitScheduler:
        """The refit scheduler (inline or background)."""
        return self._scheduler

    @property
    def stats(self) -> ServingStats:
        """Operational metrics for this service."""
        return self._stats

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------
    def register_model(
        self,
        table: str | ModelKey,
        trainer: QuickSel,
        columns: Sequence[str] = (),
        refit_backlog: bool = True,
        initial_errors: Sequence[float] = (),
    ) -> ModelKey:
        """Put a QuickSel trainer behind a ``(table, columns)`` model key.

        The registry immediately serves either the trainer's existing
        model (published as version 1) or the uniform bootstrap snapshot
        (version 0) if the trainer has not been fitted yet.  The trainer
        object becomes service-owned: feed it feedback only through
        :meth:`observe` from now on.

        ``refit_backlog=False`` registers the trainer *as is*: its
        current model is served unchanged and any unabsorbed feedback is
        carried as pending toward the refit policy instead of being
        trained in here.  Shard migration uses this so a hand-off
        republishes the exact model the source was serving.

        ``initial_errors`` seeds the drift window (oldest first) so a
        hand-off also carries the accumulated drift evidence — a model
        one bad query away from a drift-triggered refit stays one bad
        query away after it moves (see :meth:`drift_errors`).
        """
        key = self._key(table, columns)
        # Reject duplicates before touching the trainer: re-registering a
        # served key must not refit anything (the key's existing trainer
        # may be mid-refit under its own lock).  The insert below
        # re-checks under the lock for the register/register race.
        with self._lock:
            if key in self._served:
                raise ServingError(f"model key {key} is already registered")
        # A trainer carrying feedback its model has not absorbed (no model
        # yet, or observations recorded after the last refit) is refitted
        # first — otherwise that backlog would serve stale/uniform
        # estimates until fresh traffic filled the refit policy's
        # triggers.  Refitting before touching any shared state means a
        # failed refit leaves nothing registered, so the call can simply
        # be retried.
        fitted_on = (
            0 if trainer.last_refit is None
            else trainer.last_refit.observed_queries
        )
        if refit_backlog and trainer.observed_count > fitted_on:
            trainer.refit()
            fitted_on = trainer.last_refit.observed_queries
        with self._lock:
            if key in self._served:
                raise ServingError(f"model key {key} is already registered")
            error_window = max(
                self._policy.drift_window, self._policy.min_drift_observations
            )
            self._registry.register(key, trainer.domain)
            served = _ServedModel(key, trainer, error_window)
            served.pending = trainer.observed_count - fitted_on
            served.errors.extend(initial_errors)  # maxlen keeps the newest
            self._served[key] = served
        # Same discipline as _refit: publish only under the served model's
        # lock so an initial publish cannot interleave with a refit's.
        with served.lock:
            if trainer.model is not None:
                self._registry.publish(
                    key, trainer.model, trainer.last_refit.observed_queries
                )
        return key

    def unregister_model(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> QuickSel:
        """Withdraw a key and hand back its trainer (shard migration).

        Waits for an in-flight refit of the key to publish (by taking the
        trainer lock) before removing the registry snapshot, so the
        hand-off never races a publish.  A refit still *queued* on the
        scheduler when the key leaves fails harmlessly there; callers
        that care should :meth:`drain` first.  The returned trainer
        carries all absorbed feedback and can be re-registered elsewhere
        without retraining from scratch.
        """
        key = self._key(table, columns)
        with self._lock:
            try:
                served = self._served.pop(key)
            except KeyError as error:
                raise ServingError(
                    f"no trainer registered for key {key}; nothing to unregister"
                ) from error
        with served.lock:
            self._registry.remove(key)
        self._cache.invalidate(key)
        return served.trainer

    def key_for(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> ModelKey:
        """Normalise ``(table, columns)`` to the :class:`ModelKey` it names."""
        return self._key(table, columns)

    def model_keys(self) -> Sequence[ModelKey]:
        """All model keys this service owns a trainer for."""
        with self._lock:
            return tuple(self._served)

    def snapshot_for(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> ModelSnapshot:
        """The snapshot currently serving a key (metrics/debug surface)."""
        return self._registry.current(self._key(table, columns))

    def feedback_count(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> int:
        """Total observations absorbed by a key's trainer (incl. unpublished)."""
        served = self._served_model(self._key(table, columns))
        with served.lock:
            return served.trainer.observed_count

    def drift_errors(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> tuple[float, ...]:
        """The key's recent served-vs-true error window, oldest first.

        This is the drift trigger's evidence; migration reads it before
        the hand-off and replays it into the destination via
        ``register_model(initial_errors=...)``.
        """
        served = self._served_model(self._key(table, columns))
        with served.lock:
            return tuple(served.errors)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def estimate(
        self,
        table: str | ModelKey,
        predicate: PredicateLike,
        columns: Sequence[str] = (),
    ) -> float:
        """Estimate one predicate's selectivity from the current snapshot."""
        key = self._key(table, columns)
        start = time.perf_counter()
        snapshot = self._registry.current(key)
        value, hit = self._estimate_cached(key, snapshot, predicate)
        self._stats.record_estimate(time.perf_counter() - start, hit)
        return value

    def estimate_batch(
        self,
        table: str | ModelKey,
        predicates: Sequence[PredicateLike],
        columns: Sequence[str] = (),
    ) -> np.ndarray:
        """Estimate a burst of predicates against one snapshot version.

        All predicates are answered by the *same* model version (resolved
        once at entry).  Cache hits are filled directly; all misses are
        evaluated in a single vectorised pass and then cached.
        """
        key = self._key(table, columns)
        start = time.perf_counter()
        snapshot = self._registry.current(key)
        results = np.empty(len(predicates))
        miss_indices: list[int] = []
        miss_predicates: list[PredicateLike] = []
        miss_keys = []
        for index, predicate in enumerate(predicates):
            cache_key = self._cache_key(key, snapshot, predicate)
            cached = None if cache_key is None else self._cache.get(cache_key)
            if cached is not None:
                results[index] = cached
            else:
                miss_indices.append(index)
                miss_predicates.append(predicate)
                miss_keys.append(cache_key)
        if miss_predicates:
            values = snapshot.estimate_many(miss_predicates)
            for index, cache_key, value in zip(miss_indices, miss_keys, values):
                value = float(value)
                results[index] = value
                if cache_key is not None:
                    self._cache.put(cache_key, value)
        self._stats.record_batch(
            len(predicates),
            len(predicates) - len(miss_predicates),
            time.perf_counter() - start,
        )
        return results

    def estimate_batch_mixed(
        self, pairs: Sequence[tuple[str | ModelKey, PredicateLike]]
    ) -> np.ndarray:
        """Estimate a burst spanning several model keys, in input order.

        The burst is grouped by key and each group goes through
        :meth:`estimate_batch` (one snapshot resolve + one vectorised miss
        pass per key); results land back in the positions their pairs
        came in.  The sharded cluster exposes the same method with the
        groups fanned out across shards.
        """
        results = np.empty(len(pairs))
        groups: dict[ModelKey, tuple[list[int], list[PredicateLike]]] = {}
        for index, (table, predicate) in enumerate(pairs):
            key = self._key(table, ())
            indices, predicates = groups.setdefault(key, ([], []))
            indices.append(index)
            predicates.append(predicate)
        for key, (indices, predicates) in groups.items():
            results[indices] = self.estimate_batch(key, predicates)
        return results

    def current_estimate(
        self,
        table: str | ModelKey,
        predicate: PredicateLike,
        columns: Sequence[str] = (),
    ) -> float:
        """The estimate the current snapshot serves, off the metrics books.

        Identical to :meth:`estimate` (same snapshot, same cache) but not
        recorded as a read request — the write path uses it to price the
        served-vs-true error without polluting read latency percentiles.
        """
        key = self._key(table, columns)
        snapshot = self._registry.current(key)
        value, _ = self._estimate_cached(key, snapshot, predicate)
        return value

    # ------------------------------------------------------------------
    # Writes (the learning loop)
    # ------------------------------------------------------------------
    def observe(
        self,
        table: str | ModelKey,
        predicate: PredicateLike,
        selectivity: float,
        columns: Sequence[str] = (),
    ) -> bool:
        """Record engine feedback and maybe trigger a background refit.

        Returns True if this observation triggered a refit submission
        (which may itself be coalesced into an already-queued one).
        """
        key = self._key(table, columns)
        served = self._served_model(key)
        snapshot = self._registry.current(key)
        served_estimate, _ = self._estimate_cached(key, snapshot, predicate)
        with served.lock:
            decision = self._absorb(
                served, ((predicate, selectivity, served_estimate),)
            )
        self._stats.record_observation()
        return self._maybe_refit(key, decision)

    def apply_feedback(
        self,
        table: str | ModelKey,
        feedback: Sequence[tuple[PredicateLike, float, float]],
        columns: Sequence[str] = (),
        blocking: bool = True,
    ) -> bool | None:
        """Absorb a batch of already-priced observations under one lock.

        ``feedback`` holds ``(predicate, true_selectivity,
        served_estimate)`` triples — the estimate each observation was
        served with, priced by the caller (see :meth:`current_estimate`)
        *before* queueing.  This is the replay half of the cluster's
        non-blocking write path: an
        :class:`~repro.cluster.buffer.ObservationBuffer` enqueues triples
        without touching the trainer lock and hands them here when the
        lock is free.

        With ``blocking=False`` the call returns ``None`` immediately —
        applying nothing — if the trainer lock is held (a refit in
        flight).  Otherwise returns whether the batch triggered a refit
        submission.
        """
        key = self._key(table, columns)
        feedback = list(feedback)
        if not feedback:
            return False
        served = self._served_model(key)
        if not served.lock.acquire(blocking=blocking):
            return None
        try:
            decision = self._absorb(served, feedback)
        finally:
            served.lock.release()
        self._stats.record_observations(len(feedback))
        try:
            return self._maybe_refit(key, decision)
        except ServingError:
            # The batch IS absorbed by now; a failed refit submission
            # (scheduler shut down mid-teardown) must not escape as an
            # error — the buffer's flush would read it as refusal,
            # re-queue, and double-apply the same feedback later.
            return False

    def refit_now(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> ModelSnapshot:
        """Retrain synchronously on the caller's thread and publish."""
        key = self._key(table, columns)
        self._refit(key)
        return self._registry.current(key)

    def drain(self, timeout: float | None = None) -> None:
        """Wait for all in-flight background refits to finish."""
        self._scheduler.drain(timeout)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Release the service: detach from the registry, stop the scheduler.

        Required when the registry (or scheduler) outlives this service —
        e.g. several services sharing one registry — since the publish
        listener registered at construction would otherwise keep the
        service (cache, trainers, stats) reachable for the registry's
        lifetime.  A scheduler injected by the caller is left running
        (other services may share it); only a service-created scheduler
        is shut down.  Idempotent: closing twice is a no-op.  The service
        must not be used afterwards.
        """
        with self._lock:
            if self._closed:
                return
        self._registry.remove_listener(self._on_publish)
        if self._owns_scheduler:
            # May raise if a long refit is still running; the closed
            # flag is only set after everything released, so the caller
            # can retry close() instead of it becoming a silent no-op.
            self._scheduler.shutdown()
        with self._lock:
            self._closed = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _key(self, table: str | ModelKey, columns: Sequence[str]) -> ModelKey:
        return normalize_key(table, columns)

    def _absorb(
        self,
        served: _ServedModel,
        feedback: Sequence[tuple[PredicateLike, float, float]],
    ) -> RefitDecision:
        """Feed priced observations to the trainer; caller holds its lock."""
        for predicate, selectivity, served_estimate in feedback:
            served.trainer.observe(predicate, selectivity)
            served.pending += 1
            served.errors.append(abs(served_estimate - selectivity))
        return self._policy.decide(served.pending, served.errors)

    def _maybe_refit(self, key: ModelKey, decision: RefitDecision) -> bool:
        if not decision:
            return False
        self._stats.record_refit_triggered()
        self._scheduler.submit(key, lambda: self._refit(key))
        return True

    def _served_model(self, key: ModelKey) -> _ServedModel:
        with self._lock:
            try:
                return self._served[key]
            except KeyError as error:
                raise ServingError(
                    f"no trainer registered for key {key}; "
                    "call register_model() first"
                ) from error

    def _cache_key(
        self, key: ModelKey, snapshot: ModelSnapshot, predicate: PredicateLike
    ) -> tuple | None:
        """The cache key for a predicate, or None if it has no stable key.

        Custom :class:`~repro.core.predicate.Predicate`/``Constraint``
        subclasses are estimable (via ``to_region``) but not structurally
        keyable; they are served uncached rather than rejected.
        """
        try:
            return (key, snapshot.version, predicate_cache_key(predicate))
        except ServingError:
            return None

    def _estimate_cached(
        self, key: ModelKey, snapshot: ModelSnapshot, predicate: PredicateLike
    ) -> tuple[float, bool]:
        cache_key = self._cache_key(key, snapshot, predicate)
        if cache_key is not None:
            cached = self._cache.get(cache_key)
            if cached is not None:
                return cached, True
        value = float(snapshot.estimate(predicate))
        if cache_key is not None:
            self._cache.put(cache_key, value)
        return value, False

    def _refit(self, key: ModelKey) -> None:
        served = self._served_model(key)
        # The publish happens under the same lock as the training so two
        # concurrent refits for one key (background worker + refit_now)
        # cannot publish out of order and leave a staler model as the
        # highest version.
        with served.lock:
            stats = served.trainer.refit()
            model = served.trainer.model
            assert model is not None
            served.pending = 0
            served.errors.clear()
            self._registry.publish(key, model, stats.observed_queries)
        self._stats.record_refit_completed()

    def _on_publish(self, key: ModelKey, snapshot: ModelSnapshot) -> None:
        # Version-scoped keys already guarantee correctness; eager
        # invalidation just frees the dead version's cache space.
        self._cache.invalidate(key)

    def __repr__(self) -> str:
        return (
            f"SelectivityService(models={len(self._served)}, "
            f"scheduler={self._scheduler.mode!r})"
        )
