"""LRU result cache for served selectivity estimates.

Query optimizers re-probe the same predicates many times during plan
enumeration, so the service memoises ``(model key, model version,
predicate) -> estimate``.  Two design points:

* **Version-scoped keys.**  The model version is part of the cache key,
  so a hot-swap can never serve a stale estimate even if invalidation
  races with a read.  Explicit :meth:`EstimateCache.invalidate` is still
  called on every publish to evict the dead version's entries promptly
  instead of letting them age out of the LRU.
* **Structural predicate keys.**  :func:`predicate_cache_key` derives a
  hashable token from the predicate's structure (constraint dims and
  bounds) without lowering it to geometry, so a cache *hit* costs a dict
  lookup, not a region construction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable

from repro.core.geometry import Hyperrectangle
from repro.core.predicate import (
    BoxPredicate,
    Conjunction,
    Constraint,
    Disjunction,
    EqualityConstraint,
    Negation,
    Predicate,
    RangeConstraint,
    TruePredicate,
)
from repro.core.region import Region
from repro.exceptions import ServingError

__all__ = ["EstimateCache", "predicate_cache_key"]


def _constraint_key(constraint: Constraint) -> Hashable:
    if isinstance(constraint, RangeConstraint):
        return ("r", constraint.dim, constraint.low, constraint.high)
    if isinstance(constraint, EqualityConstraint):
        return ("e", constraint.dim, constraint.value, constraint.width)
    # An unknown subclass has no field set we can key on structurally, and
    # a repr/id-based key could collide after address reuse — refuse
    # rather than risk serving another predicate's estimate.
    raise ServingError(
        f"cannot build a cache key for constraint type "
        f"{type(constraint).__name__}"
    )


def predicate_cache_key(predicate: Predicate | Hyperrectangle | Region) -> Hashable:
    """A hashable token such that equal tokens imply equal estimates.

    The token mirrors the predicate's syntax tree; two syntactically
    different spellings of the same predicate may get different tokens
    (costing only a duplicate cache entry, never a wrong answer).
    """
    if isinstance(predicate, Hyperrectangle):
        return ("H", predicate.bounds.tobytes())
    if isinstance(predicate, Region):
        return ("R", tuple(box.bounds.tobytes() for box in predicate.boxes))
    if isinstance(predicate, BoxPredicate):
        return ("B", tuple(_constraint_key(c) for c in predicate.constraints))
    if isinstance(predicate, TruePredicate):
        return ("T",)
    if isinstance(predicate, Conjunction):
        return ("A", tuple(predicate_cache_key(c) for c in predicate.children))
    if isinstance(predicate, Disjunction):
        return ("O", tuple(predicate_cache_key(c) for c in predicate.children))
    if isinstance(predicate, Negation):
        return ("N", predicate_cache_key(predicate.child))
    raise ServingError(
        f"cannot build a cache key for {type(predicate).__name__}"
    )


class EstimateCache:
    """A thread-safe LRU cache of selectivity estimates."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ServingError("cache capacity must be at least 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, float]" = OrderedDict()

    @property
    def capacity(self) -> int:
        """Maximum number of cached estimates."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> float | None:
        """Return the cached estimate, refreshing its recency; None on miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: float) -> None:
        """Insert an estimate, evicting the least recently used if full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def invalidate(self, model_key: object) -> int:
        """Drop every entry belonging to ``model_key`` (on hot-swap).

        Cache keys are ``(model_key, version, predicate_token)`` tuples;
        this removes all versions for the model.  Returns the number of
        evicted entries.
        """
        with self._lock:
            dead = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and key[0] == model_key
            ]
            for key in dead:
                del self._entries[key]
            return len(dead)

    def clear(self) -> None:
        """Drop everything."""
        with self._lock:
            self._entries.clear()
