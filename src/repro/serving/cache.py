"""LRU result cache for served selectivity estimates.

Query optimizers re-probe the same predicates many times during plan
enumeration, so the service memoises ``(model key, model version,
predicate) -> estimate``.  Two design points:

* **Version-scoped keys.**  The model version is part of the cache key,
  so a hot-swap can never serve a stale estimate even if invalidation
  races with a read.  Explicit :meth:`EstimateCache.invalidate` is still
  called on every publish to evict the dead version's entries promptly
  instead of letting them age out of the LRU.
* **Structural predicate keys.**  :func:`predicate_cache_key` derives a
  hashable token from the predicate's structure (constraint dims and
  bounds) without lowering it to geometry, so a cache *hit* costs a dict
  lookup, not a region construction.
* **Per-key capacity budgets.**  With ``per_key_capacity`` set, no single
  model key may hold more than that many entries: a plan-enumeration
  burst against one hot table evicts its *own* oldest entries instead of
  flushing every other table's working set out of the shared LRU.
* **Optional TTLs.**  With ``ttl_seconds`` set, entries expire that many
  seconds after insertion.  Expiry is checked lazily on read — an
  expired entry is evicted and reported as a miss — so there is no
  background sweeper thread; version-scoped keys already guarantee
  correctness, a TTL just bounds how long a dead version's entries (or
  entries for churning ad-hoc predicates) can squat in the LRU.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Hashable

from repro.core.geometry import Hyperrectangle
from repro.core.predicate import (
    BoxPredicate,
    Conjunction,
    Constraint,
    Disjunction,
    EqualityConstraint,
    Negation,
    Predicate,
    RangeConstraint,
    TruePredicate,
)
from repro.core.region import Region
from repro.exceptions import ServingError

__all__ = ["EstimateCache", "predicate_cache_key"]


def _constraint_key(constraint: Constraint) -> Hashable:
    if isinstance(constraint, RangeConstraint):
        return ("r", constraint.dim, constraint.low, constraint.high)
    if isinstance(constraint, EqualityConstraint):
        return ("e", constraint.dim, constraint.value, constraint.width)
    # An unknown subclass has no field set we can key on structurally, and
    # a repr/id-based key could collide after address reuse — refuse
    # rather than risk serving another predicate's estimate.
    raise ServingError(
        f"cannot build a cache key for constraint type "
        f"{type(constraint).__name__}"
    )


def predicate_cache_key(predicate: Predicate | Hyperrectangle | Region) -> Hashable:
    """A hashable token such that equal tokens imply equal estimates.

    The token mirrors the predicate's syntax tree; two syntactically
    different spellings of the same predicate may get different tokens
    (costing only a duplicate cache entry, never a wrong answer).
    """
    if isinstance(predicate, Hyperrectangle):
        return ("H", predicate.bounds.tobytes())
    if isinstance(predicate, Region):
        return ("R", tuple(box.bounds.tobytes() for box in predicate.boxes))
    if isinstance(predicate, BoxPredicate):
        return ("B", tuple(_constraint_key(c) for c in predicate.constraints))
    if isinstance(predicate, TruePredicate):
        return ("T",)
    if isinstance(predicate, Conjunction):
        return ("A", tuple(predicate_cache_key(c) for c in predicate.children))
    if isinstance(predicate, Disjunction):
        return ("O", tuple(predicate_cache_key(c) for c in predicate.children))
    if isinstance(predicate, Negation):
        return ("N", predicate_cache_key(predicate.child))
    raise ServingError(
        f"cannot build a cache key for {type(predicate).__name__}"
    )


def _model_key_of(key: Hashable) -> Hashable | None:
    """The model-key component of a cache key (None for foreign keys)."""
    if isinstance(key, tuple) and key:
        return key[0]
    return None


class EstimateCache:
    """A thread-safe LRU cache of selectivity estimates.

    ``per_key_capacity`` (optional) bounds how many entries any one model
    key may occupy.  When a model key is at its budget, its own least
    recently used entry is evicted first, so one hot key cannot push
    every other key's entries out of the global LRU.  Entries whose keys
    are not ``(model_key, ...)`` tuples are exempt from the budget (they
    only compete in the global LRU).

    ``ttl_seconds`` (optional) expires entries that many seconds after
    insertion; expiry is checked on read (no background thread), so an
    expired entry lingers in memory only until it is next looked up,
    evicted by the LRU, or invalidated.
    """

    def __init__(
        self,
        capacity: int = 4096,
        per_key_capacity: int | None = None,
        ttl_seconds: float | None = None,
    ) -> None:
        if capacity < 1:
            raise ServingError("cache capacity must be at least 1")
        if per_key_capacity is not None and per_key_capacity < 1:
            raise ServingError("per_key_capacity must be at least 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ServingError("ttl_seconds must be positive when set")
        self._capacity = capacity
        self._per_key_capacity = per_key_capacity
        self._ttl_seconds = ttl_seconds
        self._lock = threading.Lock()
        # Values are floats, or (value, expiry-deadline) pairs when a TTL
        # is configured; the unbudgeted, un-TTL'd cache keeps the PR 1
        # memory footprint.
        self._entries: "OrderedDict[Hashable, float | tuple[float, float]]" = (
            OrderedDict()
        )
        # model key -> its cache keys in LRU order (an OrderedDict used
        # as an ordered set).  Maintained only when a per-key budget is
        # configured; the unbudgeted cache keeps the PR 1 behaviour and
        # memory footprint.
        self._buckets: dict[Hashable, "OrderedDict[Hashable, None]"] = {}

    @property
    def capacity(self) -> int:
        """Maximum number of cached estimates."""
        return self._capacity

    @property
    def per_key_capacity(self) -> int | None:
        """Maximum entries any single model key may hold (None: unbounded)."""
        return self._per_key_capacity

    @property
    def ttl_seconds(self) -> float | None:
        """Seconds an entry stays valid after insertion (None: forever)."""
        return self._ttl_seconds

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries_for(self, model_key: object) -> int:
        """How many cached estimates ``model_key`` currently holds."""
        with self._lock:
            if self._per_key_capacity is not None:
                bucket = self._buckets.get(model_key)
                return 0 if bucket is None else len(bucket)
            return sum(1 for key in self._entries if _model_key_of(key) == model_key)

    def get(self, key: Hashable) -> float | None:
        """Return the cached estimate, refreshing its recency; None on miss.

        With a TTL configured, an entry past its deadline is evicted
        here and reported as a miss — reads are the expiry checkpoint.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if self._ttl_seconds is not None:
                value, deadline = entry
                if time.monotonic() >= deadline:
                    del self._entries[key]
                    self._discard_from_bucket(key)
                    return None
            else:
                value = entry
            self._entries.move_to_end(key)
            if self._per_key_capacity is not None:
                bucket = self._buckets.get(_model_key_of(key))
                if bucket is not None and key in bucket:
                    bucket.move_to_end(key)
            return value

    def put(self, key: Hashable, value: float) -> None:
        """Insert an estimate, evicting the least recently used if full.

        Eviction order: the owning model key's own LRU entry while that
        key is over its budget, then the global LRU while the cache is
        over its total capacity.
        """
        with self._lock:
            if self._ttl_seconds is not None:
                self._entries[key] = (
                    value, time.monotonic() + self._ttl_seconds
                )
            else:
                self._entries[key] = value
            self._entries.move_to_end(key)
            if self._per_key_capacity is not None:
                model_key = _model_key_of(key)
                if model_key is not None:
                    bucket = self._buckets.setdefault(model_key, OrderedDict())
                    bucket[key] = None
                    bucket.move_to_end(key)
                    while len(bucket) > self._per_key_capacity:
                        victim, _ = bucket.popitem(last=False)
                        self._entries.pop(victim, None)
            while len(self._entries) > self._capacity:
                victim, _ = self._entries.popitem(last=False)
                self._discard_from_bucket(victim)

    def invalidate(self, model_key: object) -> int:
        """Drop every entry belonging to ``model_key`` (on hot-swap).

        Cache keys are ``(model_key, version, predicate_token)`` tuples;
        this removes all versions for the model.  Returns the number of
        evicted entries.
        """
        with self._lock:
            bucket = self._buckets.pop(model_key, None)
            if self._per_key_capacity is not None and bucket is not None:
                for key in bucket:
                    self._entries.pop(key, None)
                return len(bucket)
            dead = [
                key
                for key in self._entries
                if _model_key_of(key) == model_key
            ]
            for key in dead:
                del self._entries[key]
            return len(dead)

    def clear(self) -> None:
        """Drop everything."""
        with self._lock:
            self._entries.clear()
            self._buckets.clear()

    def _discard_from_bucket(self, key: Hashable) -> None:
        """Remove an evicted entry from its bucket; caller holds the lock."""
        if self._per_key_capacity is None:
            return
        bucket = self._buckets.get(_model_key_of(key))
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                self._buckets.pop(_model_key_of(key), None)
