"""LRU result cache for served selectivity estimates.

Query optimizers re-probe the same predicates many times during plan
enumeration, so the service memoises ``(model key, model version,
predicate) -> estimate``.  Two design points:

* **Version-scoped keys.**  The model version is part of the cache key,
  so a hot-swap can never serve a stale estimate even if invalidation
  races with a read.  Explicit :meth:`EstimateCache.invalidate` is still
  called on every publish to evict the dead version's entries promptly
  instead of letting them age out of the LRU.
* **Structural predicate keys.**  :func:`predicate_cache_key` derives a
  hashable token from the predicate's structure (constraint dims and
  bounds) without lowering it to geometry, so a cache *hit* costs a dict
  lookup, not a region construction.
* **Per-key capacity budgets.**  With ``per_key_capacity`` set, no single
  model key may hold more than that many entries: a plan-enumeration
  burst against one hot table evicts its *own* oldest entries instead of
  flushing every other table's working set out of the shared LRU.
* **Optional TTLs.**  With ``ttl_seconds`` set, entries expire that many
  seconds after insertion.  There is no background sweeper thread:
  expired entries are swept (via an amortised-O(1) deadline-ordered
  deque) on reads, size queries, and — crucially — *before* any
  capacity eviction, so a dead entry is never counted and never causes
  a live entry's eviction; version-scoped keys already guarantee
  correctness, a TTL just bounds how long a dead version's entries (or
  entries for churning ad-hoc predicates) can squat in the LRU.
* **Optional TinyLFU admission.**  With ``admission="tinylfu"``, a
  :class:`FrequencySketch` (count-min, 4-bit counters, periodic halving)
  gates entry to a full cache: a new key must have been looked up at
  least twice recently *and* be recently-more-popular than the LRU
  victim it would evict.  Lookups (hits and misses alike) are what
  count as accesses, so a key that keeps being asked for is admitted
  eventually — but a one-pass scan, whose keys are each looked up
  exactly once, stops flushing the hot working set.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from collections.abc import Callable, Hashable

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.core.predicate import (
    BoxPredicate,
    Conjunction,
    Constraint,
    Disjunction,
    EqualityConstraint,
    Negation,
    Predicate,
    RangeConstraint,
    TruePredicate,
)
from repro.core.region import Region
from repro.exceptions import ServingError

__all__ = ["EstimateCache", "FrequencySketch", "predicate_cache_key"]


def _constraint_key(constraint: Constraint) -> Hashable:
    if isinstance(constraint, RangeConstraint):
        return ("r", constraint.dim, constraint.low, constraint.high)
    if isinstance(constraint, EqualityConstraint):
        return ("e", constraint.dim, constraint.value, constraint.width)
    # An unknown subclass has no field set we can key on structurally, and
    # a repr/id-based key could collide after address reuse — refuse
    # rather than risk serving another predicate's estimate.
    raise ServingError(
        f"cannot build a cache key for constraint type "
        f"{type(constraint).__name__}"
    )


def predicate_cache_key(predicate: Predicate | Hyperrectangle | Region) -> Hashable:
    """A hashable token such that equal tokens imply equal estimates.

    The token mirrors the predicate's syntax tree; two syntactically
    different spellings of the same predicate may get different tokens
    (costing only a duplicate cache entry, never a wrong answer).
    """
    if isinstance(predicate, Hyperrectangle):
        return ("H", predicate.bounds.tobytes())
    if isinstance(predicate, Region):
        return ("R", tuple(box.bounds.tobytes() for box in predicate.boxes))
    if isinstance(predicate, BoxPredicate):
        return ("B", tuple(_constraint_key(c) for c in predicate.constraints))
    if isinstance(predicate, TruePredicate):
        return ("T",)
    if isinstance(predicate, Conjunction):
        return ("A", tuple(predicate_cache_key(c) for c in predicate.children))
    if isinstance(predicate, Disjunction):
        return ("O", tuple(predicate_cache_key(c) for c in predicate.children))
    if isinstance(predicate, Negation):
        return ("N", predicate_cache_key(predicate.child))
    raise ServingError(
        f"cannot build a cache key for {type(predicate).__name__}"
    )


def _model_key_of(key: Hashable) -> Hashable | None:
    """The model-key component of a cache key (None for foreign keys).

    Service-shaped cache keys are exactly ``(model_key, version,
    predicate_token)`` 3-tuples with an integer version.  The arity and
    version check matter: predicate tokens themselves are 1–2-tuples
    (``("H", bytes)``, ``("T",)``) and constraint keys are 4-tuples, so
    a bare token cached directly must *not* be bucketed under its first
    element — a ``("H", ...)`` entry attributed to a phantom model key
    ``"H"`` would be silently dropped by ``invalidate("H")`` and counted
    against the wrong per-key budget.
    """
    if isinstance(key, tuple) and len(key) == 3 and isinstance(key[1], int):
        return key[0]
    return None


class FrequencySketch:
    """A count-min sketch of access frequencies (the TinyLFU filter).

    Four rows of 4-bit-saturating counters (stored as ``uint8`` capped
    at 15); :meth:`estimate` is the minimum over the rows.  After
    ``10 * capacity`` increments every counter is halved — the classic
    TinyLFU aging step, which makes the sketch track *recent* popularity
    instead of all of history (a one-pass scan can never saturate it).

    A *doorkeeper* set absorbs first sightings: a key's first access in
    each sample period only records membership, and only repeat accesses
    touch the count-min rows.  Without it a heavy one-pass scan floods
    the rows with single-count increments and the resulting collision
    noise hands fresh keys phantom frequencies (enough to beat an aged
    victim and defeat admission).  The doorkeeper contributes 1 to
    :meth:`estimate` and is cleared at every aging step.
    """

    _ROW_SEEDS = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F)
    _MIX = 0x9E3779B97F4A7C15
    _MAX = 15

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServingError("sketch capacity must be at least 1")
        width = 1 << max(8, int(capacity).bit_length())
        self._mask = width - 1
        self._rows = np.zeros((len(self._ROW_SEEDS), width), dtype=np.uint8)
        self._doorkeeper: set[Hashable] = set()
        self._increments = 0
        self._sample_size = 10 * capacity

    def _columns(self, key: Hashable) -> list[int]:
        h = hash(key)
        return [
            (((h ^ seed) * self._MIX) >> 17) & self._mask
            for seed in self._ROW_SEEDS
        ]

    def increment(self, key: Hashable) -> None:
        """Record one access to ``key`` (ages the sketch periodically)."""
        if key not in self._doorkeeper:
            self._doorkeeper.add(key)
        else:
            rows = self._rows
            for row, column in enumerate(self._columns(key)):
                if rows[row, column] < self._MAX:
                    rows[row, column] += 1
        self._increments += 1
        if self._increments >= self._sample_size:
            self._rows >>= 1
            self._doorkeeper.clear()
            self._increments //= 2

    def estimate(self, key: Hashable) -> int:
        """Approximate recent access count of ``key`` (0–15)."""
        rows = self._rows
        counted = min(
            int(rows[row, column])
            for row, column in enumerate(self._columns(key))
        )
        if key in self._doorkeeper:
            counted += 1
        return min(counted, self._MAX)


class EstimateCache:
    """A thread-safe LRU cache of selectivity estimates.

    ``per_key_capacity`` (optional) bounds how many entries any one model
    key may occupy.  When a model key is at its budget, its own least
    recently used entry is evicted first, so one hot key cannot push
    every other key's entries out of the global LRU.  Entries whose keys
    are not ``(model_key, ...)`` tuples are exempt from the budget (they
    only compete in the global LRU).

    ``ttl_seconds`` (optional) expires entries that many seconds after
    insertion.  Expired entries are swept *before* they can influence
    anything observable: they are excluded from :meth:`__len__` and
    :meth:`entries_for`, and a full cache sweeps its expired entries
    before evicting any live one — a dead entry never squats in capacity
    while a live entry gets pushed out.  The sweep is O(1) amortised: a
    deadline-ordered deque (insertion order equals deadline order, the
    TTL is constant) is popped from the front; no background thread.

    ``admission="tinylfu"`` puts a TinyLFU frequency filter in front of
    the LRU: at global capacity a *new* key is admitted only if its
    recent lookup frequency (a :class:`FrequencySketch`, incremented on
    every ``get`` — hits and misses alike) is at least 2 and exceeds
    the LRU victim's.  One-pass scans — plan enumeration over thousands
    of never-repeated predicates — then bounce off the filter instead
    of flushing the hot working set.
    Default is plain LRU admission.

    ``clock`` (default :func:`time.monotonic`) is injectable for
    deterministic TTL tests.
    """

    def __init__(
        self,
        capacity: int = 4096,
        per_key_capacity: int | None = None,
        ttl_seconds: float | None = None,
        admission: str | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ServingError("cache capacity must be at least 1")
        if per_key_capacity is not None and per_key_capacity < 1:
            raise ServingError("per_key_capacity must be at least 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ServingError("ttl_seconds must be positive when set")
        if admission not in (None, "lru", "tinylfu"):
            raise ServingError(
                f"unknown admission policy {admission!r}; "
                "expected None, 'lru', or 'tinylfu'"
            )
        self._capacity = capacity
        self._per_key_capacity = per_key_capacity
        self._ttl_seconds = ttl_seconds
        self._clock = clock
        self._sketch = (
            FrequencySketch(capacity) if admission == "tinylfu" else None
        )
        self._lock = threading.Lock()
        # Values are floats, or (value, expiry-deadline) pairs when a TTL
        # is configured; the unbudgeted, un-TTL'd cache keeps the PR 1
        # memory footprint.
        self._entries: "OrderedDict[Hashable, float | tuple[float, float]]" = (
            OrderedDict()
        )
        # (deadline, key) records in deadline order (TTL is constant, so
        # append order == deadline order).  A record is stale when its
        # key was since evicted or re-put (the entry's stored deadline is
        # the ground truth); the sweep skips those.
        self._expiry: "deque[tuple[float, Hashable]]" = deque()
        # model key -> its cache keys in LRU order (an OrderedDict used
        # as an ordered set).  Maintained only when a per-key budget is
        # configured; the unbudgeted cache keeps the PR 1 behaviour and
        # memory footprint.
        self._buckets: dict[Hashable, "OrderedDict[Hashable, None]"] = {}

    @property
    def capacity(self) -> int:
        """Maximum number of cached estimates."""
        return self._capacity

    @property
    def per_key_capacity(self) -> int | None:
        """Maximum entries any single model key may hold (None: unbounded)."""
        return self._per_key_capacity

    @property
    def ttl_seconds(self) -> float | None:
        """Seconds an entry stays valid after insertion (None: forever)."""
        return self._ttl_seconds

    def __len__(self) -> int:
        with self._lock:
            self._sweep_expired()
            return len(self._entries)

    def entries_for(self, model_key: object) -> int:
        """How many live cached estimates ``model_key`` currently holds."""
        with self._lock:
            self._sweep_expired()
            if self._per_key_capacity is not None:
                bucket = self._buckets.get(model_key)
                return 0 if bucket is None else len(bucket)
            return sum(1 for key in self._entries if _model_key_of(key) == model_key)

    def get(self, key: Hashable) -> float | None:
        """Return the cached estimate, refreshing its recency; None on miss.

        With a TTL configured, an entry past its deadline is evicted
        here and reported as a miss — reads are an expiry checkpoint.
        """
        with self._lock:
            if self._sketch is not None:
                self._sketch.increment(key)
            entry = self._entries.get(key)
            if entry is None:
                return None
            if self._ttl_seconds is not None:
                value, deadline = entry
                if self._clock() >= deadline:
                    del self._entries[key]
                    self._discard_from_bucket(key)
                    return None
            else:
                value = entry
            self._entries.move_to_end(key)
            if self._per_key_capacity is not None:
                bucket = self._buckets.get(_model_key_of(key))
                if bucket is not None and key in bucket:
                    bucket.move_to_end(key)
            return value

    def put(self, key: Hashable, value: float) -> None:
        """Insert an estimate, evicting the least recently used if full.

        Expired entries are swept *first*, so a dead entry can never
        cause a live one's eviction.  Under TinyLFU admission, a new key
        arriving at a full cache is admitted only if it was accessed at
        least twice recently (a one-pass scan key is, by definition,
        looked up once — it can never displace anything) AND its access
        frequency beats the prospective LRU victim's.  Frequency is
        counted by ``get`` (an access), not here: misses still count, so
        a key that keeps coming back wins admission eventually.  Then:
        the owning model key's own LRU entry is evicted while that key
        is over its budget, and the global LRU while the cache is over
        its total capacity.
        """
        with self._lock:
            self._sweep_expired()
            if self._sketch is not None:
                if (
                    key not in self._entries
                    and len(self._entries) >= self._capacity
                ):
                    frequency = self._sketch.estimate(key)
                    victim = next(iter(self._entries))
                    if frequency < 2 or frequency <= self._sketch.estimate(
                        victim
                    ):
                        return
            if self._ttl_seconds is not None:
                deadline = self._clock() + self._ttl_seconds
                self._entries[key] = (value, deadline)
                self._expiry.append((deadline, key))
            else:
                self._entries[key] = value
            self._entries.move_to_end(key)
            if self._per_key_capacity is not None:
                model_key = _model_key_of(key)
                if model_key is not None:
                    bucket = self._buckets.setdefault(model_key, OrderedDict())
                    bucket[key] = None
                    bucket.move_to_end(key)
                    while len(bucket) > self._per_key_capacity:
                        victim, _ = bucket.popitem(last=False)
                        self._entries.pop(victim, None)
            while len(self._entries) > self._capacity:
                victim, _ = self._entries.popitem(last=False)
                self._discard_from_bucket(victim)

    def _sweep_expired(self) -> None:
        """Evict every entry whose deadline has passed; caller holds the lock.

        Amortised O(1): the expiry deque is deadline-ordered, so the
        sweep pops from the front until it meets a live deadline.  A
        popped record whose key was evicted or re-put since (the stored
        deadline disagrees) is simply dropped — the re-put appended its
        own record further back.
        """
        if self._ttl_seconds is None or not self._expiry:
            return
        now = self._clock()
        entries = self._entries
        expiry = self._expiry
        while expiry:
            deadline, key = expiry[0]
            if deadline > now:
                break
            expiry.popleft()
            entry = entries.get(key)
            if entry is None or entry[1] != deadline:
                continue
            del entries[key]
            self._discard_from_bucket(key)

    def invalidate(self, model_key: object) -> int:
        """Drop every entry belonging to ``model_key`` (on hot-swap).

        Cache keys are ``(model_key, version, predicate_token)`` tuples;
        this removes all versions for the model.  Returns the number of
        evicted entries.
        """
        with self._lock:
            bucket = self._buckets.pop(model_key, None)
            if self._per_key_capacity is not None and bucket is not None:
                for key in bucket:
                    self._entries.pop(key, None)
                return len(bucket)
            dead = [
                key
                for key in self._entries
                if _model_key_of(key) == model_key
            ]
            for key in dead:
                del self._entries[key]
            return len(dead)

    def clear(self) -> None:
        """Drop everything (the frequency sketch keeps its history)."""
        with self._lock:
            self._entries.clear()
            self._expiry.clear()
            self._buckets.clear()

    def _discard_from_bucket(self, key: Hashable) -> None:
        """Remove an evicted entry from its bucket; caller holds the lock."""
        if self._per_key_capacity is None:
            return
        bucket = self._buckets.get(_model_key_of(key))
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                self._buckets.pop(_model_key_of(key), None)
