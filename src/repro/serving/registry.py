"""The registry of served models: versioned snapshots with atomic hot-swap.

:class:`EstimatorRegistry` maps a :class:`ModelKey` — the ``(table,
columns)`` pair a model covers — to its *current*
:class:`~repro.serving.snapshot.ModelSnapshot`.  Publication replaces the
snapshot in one assignment under a lock, so readers either see the old
version or the new one, never a half-trained model; versions increase by
exactly one per publish.  Listeners (the service's result cache, metrics)
are notified after every swap.

The registry holds *only* immutable snapshots.  The mutable trainer (a
:class:`~repro.estimators.backend.TrainableBackend` accumulating
feedback — QuickSel or any adapted baseline estimator) lives in the
service layer; training happens off to the side and its finished model is
published here.

A/B serving: each key may additionally carry one *challenger* snapshot —
a second, independently versioned chain for a shadow backend.  Champion
reads are untouched; :meth:`EstimatorRegistry.promote` atomically
republishes the challenger's current model as the next champion version
(readers see the old champion or the promoted one, never a mix) and
retires the challenger slot.  Challenger publishes do not fire the
publish listeners — those drive champion-read caches; the service
invalidates its challenger-scoped cache entries itself.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.geometry import Hyperrectangle
from repro.estimators.backend import ServableModel
from repro.exceptions import ServingError
from repro.serving.snapshot import ModelSnapshot

__all__ = ["ModelKey", "EstimatorRegistry", "SnapshotCell", "normalize_key"]

PublishListener = Callable[["ModelKey", ModelSnapshot], None]


class SnapshotCell:
    """One key's mutable slot holding its current immutable snapshot.

    The cell object is *stable* across publishes: the registry swaps
    ``cell.snapshot`` (a single reference assignment, atomic under the
    GIL) while the cell itself stays put.  Fast-path readers resolve the
    cell once per key (see
    :meth:`repro.serving.service.SelectivityService.fast_slot`) and then
    read ``cell.snapshot`` per request with no lock and no dict hop —
    they still observe every publish the instant it lands.  A withdrawn
    key's cell has ``snapshot`` set to ``None``, which readers treat as
    "unregistered".
    """

    __slots__ = ("snapshot",)

    def __init__(self, snapshot: ModelSnapshot | None) -> None:
        self.snapshot = snapshot


@dataclass(frozen=True, order=True)
class ModelKey:
    """Identity of one served model: a table and the columns it covers.

    An empty ``columns`` tuple means "all columns of the table" (the
    common whole-table model).
    """

    table: str
    columns: tuple[str, ...] = field(default=())

    def __str__(self) -> str:
        if not self.columns:
            return self.table
        return f"{self.table}({', '.join(self.columns)})"


def normalize_key(
    table: "str | ModelKey", columns: Sequence[str] = ()
) -> ModelKey:
    """Normalise ``(table, columns)`` to the :class:`ModelKey` it names.

    Accepts either a table name plus columns or an existing key (in which
    case ``columns`` must be empty — the key already carries them).  The
    plain service and the sharded cluster share this so a key means the
    same model everywhere.
    """
    if isinstance(table, ModelKey):
        if columns:
            raise ServingError("pass columns via the ModelKey, not both")
        return table
    return ModelKey(table=table, columns=tuple(columns))


class EstimatorRegistry:
    """Thread-safe mapping from model keys to immutable model snapshots."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._cells: dict[ModelKey, SnapshotCell] = {}
        self._challengers: dict[ModelKey, ModelSnapshot] = {}
        self._listeners: list[PublishListener] = []

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, key: ModelKey, domain: Hyperrectangle) -> ModelSnapshot:
        """Install the bootstrap (version 0, uniform) snapshot for ``key``.

        Idempotent: re-registering an existing key returns its current
        snapshot unchanged, so registration never rolls a model back.
        """
        with self._lock:
            cell = self._cells.get(key)
            if cell is not None and cell.snapshot is not None:
                existing = cell.snapshot
                if existing.domain is not domain and existing.domain != domain:
                    raise ServingError(
                        f"model key {key} is already registered with a "
                        "different domain"
                    )
                return existing
            snapshot = ModelSnapshot(version=0, domain=domain, model=None)
            self._cells[key] = SnapshotCell(snapshot)
            return snapshot

    def cell(self, key: ModelKey) -> SnapshotCell:
        """The stable snapshot cell for ``key`` (raises if unknown).

        Fast-path readers resolve this once and then read
        ``cell.snapshot`` lock-free per request; ``None`` there means the
        key has since been withdrawn.
        """
        with self._lock:
            try:
                return self._cells[key]
            except KeyError as error:
                raise ServingError(
                    f"no model registered for key {key}; "
                    f"known keys: {sorted(map(str, self._cells))}"
                ) from error

    def current(self, key: ModelKey) -> ModelSnapshot:
        """The snapshot currently serving ``key`` (raises if unknown)."""
        with self._lock:
            cell = self._cells.get(key)
            if cell is None or cell.snapshot is None:
                raise ServingError(
                    f"no model registered for key {key}; "
                    f"known keys: {sorted(map(str, self._cells))}"
                )
            return cell.snapshot

    def version(self, key: ModelKey) -> int:
        """Current version number for ``key``."""
        return self.current(key).version

    def keys(self) -> Sequence[ModelKey]:
        """All registered model keys."""
        with self._lock:
            return tuple(self._cells)

    def __contains__(self, key: ModelKey) -> bool:
        with self._lock:
            return key in self._cells

    def remove(self, key: ModelKey) -> ModelSnapshot:
        """Withdraw a key from the registry, returning its final snapshot.

        Used when a model's ownership moves elsewhere (shard migration);
        raises :class:`ServingError` for unknown keys — and for keys
        still carrying a challenger (withdraw that first, or the A/B
        pair would be silently split).  No listener fires: removal is a
        hand-off, not a new version.
        """
        with self._lock:
            if key in self._challengers:
                raise ServingError(
                    f"key {key} still has a registered challenger; "
                    "remove or promote it before withdrawing the champion"
                )
            try:
                cell = self._cells.pop(key)
            except KeyError as error:
                raise ServingError(
                    f"cannot remove unregistered key {key}"
                ) from error
            snapshot = cell.snapshot
            # Outstanding fast slots still hold this cell; None tells
            # them the key is gone so they re-raise instead of serving
            # a withdrawn model.
            cell.snapshot = None
            return snapshot

    # ------------------------------------------------------------------
    # Publication (the hot-swap)
    # ------------------------------------------------------------------
    def publish(
        self,
        key: ModelKey,
        model: ServableModel,
        trained_on: int,
    ) -> ModelSnapshot:
        """Atomically swap in a freshly trained model as the next version.

        The new snapshot's version is exactly ``current + 1``; the swap is
        a single dict assignment under the registry lock, so concurrent
        readers always observe a complete snapshot.  Publish listeners run
        after the swap (outside the critical work of the swap itself) and
        receive the new snapshot.
        """
        if model is None:
            raise ServingError("cannot publish an empty model")
        with self._lock:
            cell = self._cells.get(key)
            current = cell.snapshot if cell is not None else None
            if current is None:
                raise ServingError(
                    f"cannot publish to unregistered key {key}; "
                    "call register() first"
                )
            snapshot = ModelSnapshot(
                version=current.version + 1,
                domain=current.domain,
                model=model,
                trained_on=trained_on,
            )
            cell.snapshot = snapshot
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(key, snapshot)
        return snapshot

    def add_listener(self, listener: PublishListener) -> None:
        """Invoke ``listener(key, snapshot)`` after every champion publish."""
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: PublishListener) -> None:
        """Detach a publish listener (no-op if it was never registered).

        Long-lived shared registries must detach the listeners of
        discarded services (see
        :meth:`repro.serving.service.SelectivityService.close`) or they
        keep those services reachable forever.
        """
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Challenger track (A/B serving)
    # ------------------------------------------------------------------
    def register_challenger(
        self, key: ModelKey, domain: Hyperrectangle
    ) -> ModelSnapshot:
        """Open a challenger snapshot chain (version 0 bootstrap) for ``key``.

        Requires a registered champion for the key, over the *same*
        domain (A/B comparison across different domains is meaningless);
        a key carries at most one challenger at a time.
        """
        with self._lock:
            champion_cell = self._cells.get(key)
            champion = champion_cell.snapshot if champion_cell else None
            if champion is None:
                raise ServingError(
                    f"cannot register a challenger for unregistered key {key}"
                )
            if champion.domain is not domain and champion.domain != domain:
                raise ServingError(
                    f"challenger for key {key} must cover the champion's domain"
                )
            if key in self._challengers:
                raise ServingError(
                    f"key {key} already has a registered challenger"
                )
            snapshot = ModelSnapshot(version=0, domain=champion.domain, model=None)
            self._challengers[key] = snapshot
            return snapshot

    def has_challenger(self, key: ModelKey) -> bool:
        """True if ``key`` currently carries a challenger chain."""
        with self._lock:
            return key in self._challengers

    def challenger_keys(self) -> Sequence[ModelKey]:
        """All keys with a registered challenger."""
        with self._lock:
            return tuple(self._challengers)

    def current_challenger(self, key: ModelKey) -> ModelSnapshot:
        """The challenger snapshot for ``key`` (raises if none registered)."""
        with self._lock:
            try:
                return self._challengers[key]
            except KeyError as error:
                raise ServingError(
                    f"no challenger registered for key {key}"
                ) from error

    def publish_challenger(
        self,
        key: ModelKey,
        model: ServableModel,
        trained_on: int,
    ) -> ModelSnapshot:
        """Swap in the challenger's next version (its own version chain).

        No publish listeners fire — they guard champion-read caches; the
        service owns challenger-scoped cache invalidation.
        """
        if model is None:
            raise ServingError("cannot publish an empty challenger model")
        with self._lock:
            current = self._challengers.get(key)
            if current is None:
                raise ServingError(
                    f"cannot publish to key {key} without a registered "
                    "challenger; call register_challenger() first"
                )
            snapshot = ModelSnapshot(
                version=current.version + 1,
                domain=current.domain,
                model=model,
                trained_on=trained_on,
            )
            self._challengers[key] = snapshot
            return snapshot

    def remove_challenger(self, key: ModelKey) -> ModelSnapshot:
        """Withdraw a key's challenger chain, returning its final snapshot.

        The hand-off half of shard migration for A/B pairs; no listener
        fires.
        """
        with self._lock:
            try:
                return self._challengers.pop(key)
            except KeyError as error:
                raise ServingError(
                    f"cannot remove challenger for key {key}: none registered"
                ) from error

    def promote(self, key: ModelKey) -> ModelSnapshot:
        """Atomically make the challenger's model the champion's next version.

        Under one lock acquisition: the challenger's current model is
        republished as champion version ``current + 1`` and the
        challenger slot is retired.  Concurrent readers therefore see
        either the old champion or the fully promoted one.  An untrained
        (bootstrap) challenger cannot be promoted — there is no model to
        serve.  Publish listeners fire (this *is* a champion publish).
        """
        with self._lock:
            cell = self._cells.get(key)
            champion = cell.snapshot if cell is not None else None
            if champion is None:
                raise ServingError(f"cannot promote unregistered key {key}")
            challenger = self._challengers.get(key)
            if challenger is None:
                raise ServingError(
                    f"no challenger registered for key {key}; nothing to promote"
                )
            if challenger.model is None:
                raise ServingError(
                    f"challenger for key {key} has not trained yet; "
                    "refusing to promote the uniform bootstrap"
                )
            snapshot = ModelSnapshot(
                version=champion.version + 1,
                domain=champion.domain,
                model=challenger.model,
                trained_on=challenger.trained_on,
            )
            cell.snapshot = snapshot
            del self._challengers[key]
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(key, snapshot)
        return snapshot

    def __repr__(self) -> str:
        with self._lock:
            parts = ", ".join(
                f"{key}=v{cell.snapshot.version}"
                for key, cell in self._cells.items()
                if cell.snapshot is not None
            )
        return f"EstimatorRegistry({parts})"
