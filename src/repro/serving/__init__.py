"""The selectivity-estimation serving layer.

The seed reproduction served every estimate as a blocking scalar call on
a mutable estimator; this package turns the observe → refit → estimate
loop into a small production-shaped subsystem:

* :mod:`repro.serving.snapshot` — immutable, versioned model snapshots,
* :mod:`repro.serving.registry` — per-``(table, columns)`` snapshot
  registry with atomic hot-swap on publish,
* :mod:`repro.serving.cache` — version-scoped LRU result cache,
* :mod:`repro.serving.policy` — count- and drift-based refit triggers,
* :mod:`repro.serving.scheduler` — background (or inline) refit execution,
* :mod:`repro.serving.stats` — hit rate, latency percentiles, refit
  counters,
* :mod:`repro.serving.service` — the :class:`SelectivityService`
  front-end tying it all together (``estimate`` / ``estimate_batch`` /
  ``observe``),
* :mod:`repro.serving.adapter` — a
  :class:`~repro.estimators.base.SelectivityEstimator`-protocol view so
  the engine's optimizer and feedback loop use the service unchanged.

The stack is generic over the
:class:`~repro.estimators.backend.TrainableBackend` protocol: any
estimator with ``observe_many``/``refit``/``snapshot_model`` — QuickSel
natively, the adapted query-driven and scan-based baselines — serves
behind the same snapshot/version discipline, and champion/challenger
A/B serving (``register_challenger`` / ``promote``) compares backends
under live traffic with per-backend error stats.

Batch-API contract: ``estimate_batch`` answers every predicate from one
snapshot version and matches per-predicate ``estimate`` to < 1e-9.
"""

from repro.serving.adapter import SelectivityServing, ServingEstimator
from repro.serving.cache import EstimateCache, FrequencySketch, predicate_cache_key
from repro.serving.policy import RefitDecision, RefitPolicy
from repro.serving.registry import (
    EstimatorRegistry,
    ModelKey,
    SnapshotCell,
    normalize_key,
)
from repro.serving.scheduler import RefitScheduler
from repro.serving.service import FastSlot, SelectivityService
from repro.serving.snapshot import ModelSnapshot
from repro.serving.stats import ServingStats

__all__ = [
    "ModelSnapshot",
    "ModelKey",
    "SnapshotCell",
    "normalize_key",
    "EstimatorRegistry",
    "EstimateCache",
    "FrequencySketch",
    "predicate_cache_key",
    "RefitPolicy",
    "RefitDecision",
    "RefitScheduler",
    "ServingStats",
    "FastSlot",
    "SelectivityService",
    "SelectivityServing",
    "ServingEstimator",
]
