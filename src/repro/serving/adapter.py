"""Estimator-protocol adapter over the serving layer.

:class:`ServingEstimator` lets every existing consumer of the
:class:`~repro.estimators.base.SelectivityEstimator` protocol — the
access-path optimizer, the join estimator, the experiment harness — talk
to a selectivity-serving backend without knowing it exists.
``estimate``/``estimate_many`` read through the backend's snapshot +
cache; ``observe`` feeds the backend's learning loop, so the adapter
also satisfies the
:class:`~repro.estimators.base.QueryDrivenEstimator` contract and plugs
straight into :class:`~repro.engine.feedback.FeedbackLoop`.

:class:`SelectivityServing` is the structural interface the adapter (and
the engine wiring) actually requires.  Both the single-process
:class:`~repro.serving.service.SelectivityService` and the sharded
:class:`~repro.cluster.service.ShardedSelectivityService` satisfy it, so
every consumer is backend-agnostic: hand it a plain service on one box
or a shard fleet, the call sites do not change.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro.estimators.backend import TrainableBackend
from repro.estimators.base import PredicateLike, QueryDrivenEstimator
from repro.serving.registry import ModelKey
from repro.serving.snapshot import ModelSnapshot

__all__ = ["SelectivityServing", "ServingEstimator"]


@runtime_checkable
class SelectivityServing(Protocol):
    """What a selectivity-serving backend must offer (plain or sharded)."""

    def key_for(
        self, table: "str | ModelKey", columns: Sequence[str] = ()
    ) -> ModelKey: ...

    def register_model(
        self, table: "str | ModelKey", trainer: TrainableBackend,
        columns: Sequence[str] = (),
    ) -> ModelKey: ...

    def model_keys(self) -> Sequence[ModelKey]: ...

    def snapshot_for(
        self, table: "str | ModelKey", columns: Sequence[str] = ()
    ) -> ModelSnapshot: ...

    def feedback_count(
        self, table: "str | ModelKey", columns: Sequence[str] = ()
    ) -> int: ...

    def estimate(
        self, table: "str | ModelKey", predicate: PredicateLike,
        columns: Sequence[str] = (),
    ) -> float: ...

    def estimate_batch(
        self, table: "str | ModelKey", predicates: Sequence[PredicateLike],
        columns: Sequence[str] = (),
    ) -> np.ndarray: ...

    def estimate_batch_mixed(
        self, pairs: Sequence[tuple["str | ModelKey", PredicateLike]]
    ) -> np.ndarray: ...

    def observe(
        self, table: "str | ModelKey", predicate: PredicateLike,
        selectivity: float, columns: Sequence[str] = (),
    ) -> bool: ...


class ServingEstimator(QueryDrivenEstimator):
    """A serving-backend model key seen as a plain estimator."""

    name = "QuickSel@serving"

    def __init__(self, service: SelectivityServing, key: ModelKey) -> None:
        super().__init__(service.snapshot_for(key).domain)
        self._service = service
        self._key = key

    @property
    def service(self) -> SelectivityServing:
        """The backing service (plain or sharded)."""
        return self._service

    @property
    def key(self) -> ModelKey:
        """The model key this adapter serves."""
        return self._key

    @property
    def parameter_count(self) -> int:
        """Parameters of the currently served snapshot (0 at bootstrap)."""
        return self._service.snapshot_for(self._key).parameter_count

    @property
    def version(self) -> int:
        """The snapshot version estimates are currently served from."""
        return self._service.snapshot_for(self._key).version

    def estimate(self, predicate: PredicateLike) -> float:
        return self._service.estimate(self._key, predicate)

    def estimate_many(self, predicates: Sequence[PredicateLike]) -> np.ndarray:
        return self._service.estimate_batch(self._key, predicates)

    def observe(self, predicate: PredicateLike, selectivity: float) -> None:
        self._service.observe(self._key, predicate, selectivity)

    @property
    def observed_count(self) -> int:
        """Feedback count absorbed by the underlying trainer."""
        return self._service.feedback_count(self._key)

    def __repr__(self) -> str:
        return f"ServingEstimator(key={self._key}, version={self.version})"
