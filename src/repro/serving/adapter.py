"""Estimator-protocol adapter over the serving layer.

:class:`ServingEstimator` lets every existing consumer of the
:class:`~repro.estimators.base.SelectivityEstimator` protocol — the
access-path optimizer, the join estimator, the experiment harness — talk
to a :class:`~repro.serving.service.SelectivityService` without knowing
it exists.  ``estimate``/``estimate_many`` read through the service's
snapshot + cache; ``observe`` feeds the service's learning loop, so the
adapter also satisfies the
:class:`~repro.estimators.base.QueryDrivenEstimator` contract and plugs
straight into :class:`~repro.engine.feedback.FeedbackLoop`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.estimators.base import PredicateLike, QueryDrivenEstimator
from repro.serving.registry import ModelKey
from repro.serving.service import SelectivityService

__all__ = ["ServingEstimator"]


class ServingEstimator(QueryDrivenEstimator):
    """A :class:`SelectivityService` model key seen as a plain estimator."""

    name = "QuickSel@serving"

    def __init__(self, service: SelectivityService, key: ModelKey) -> None:
        super().__init__(service.snapshot_for(key).domain)
        self._service = service
        self._key = key

    @property
    def service(self) -> SelectivityService:
        """The backing service."""
        return self._service

    @property
    def key(self) -> ModelKey:
        """The model key this adapter serves."""
        return self._key

    @property
    def parameter_count(self) -> int:
        """Parameters of the currently served snapshot (0 at bootstrap)."""
        model = self._service.snapshot_for(self._key).model
        return 0 if model is None else model.parameter_count

    @property
    def version(self) -> int:
        """The snapshot version estimates are currently served from."""
        return self._service.snapshot_for(self._key).version

    def estimate(self, predicate: PredicateLike) -> float:
        return self._service.estimate(self._key, predicate)

    def estimate_many(self, predicates: Sequence[PredicateLike]) -> np.ndarray:
        return self._service.estimate_batch(self._key, predicates)

    def observe(self, predicate: PredicateLike, selectivity: float) -> None:
        self._service.observe(self._key, predicate, selectivity)

    @property
    def observed_count(self) -> int:
        """Feedback count absorbed by the underlying trainer."""
        return self._service.feedback_count(self._key)

    def __repr__(self) -> str:
        return f"ServingEstimator(key={self._key}, version={self.version})"
