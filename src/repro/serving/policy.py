"""When to retrain: count- and drift-based refit triggers.

The seed reproduction refit lazily — any estimate after new feedback paid
the full retraining cost inline.  The serving layer instead accumulates
feedback and asks a :class:`RefitPolicy` after every observation whether
a (background) refit is due:

* **count trigger** — at least ``min_new_observations`` pieces of
  feedback have arrived since the last published model, so the model is
  simply out of date;
* **drift trigger** — the served model is *wrong*: the mean absolute
  error between the estimate the current snapshot serves and the true
  selectivity the engine measured, over the last ``drift_window``
  observations, exceeds ``drift_threshold``.  This fires early under
  workload shift (the paper's Figure 7 scenario) even when the count
  trigger has not filled up.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import ServingError

__all__ = ["RefitDecision", "RefitPolicy"]


@dataclass(frozen=True)
class RefitDecision:
    """The policy's verdict plus a human-readable reason for metrics/logs."""

    refit: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.refit


@dataclass(frozen=True)
class RefitPolicy:
    """Tunable triggers deciding when accumulated feedback forces a refit.

    Attributes:
        min_new_observations: count trigger — refit once this many
            observations are pending since the last publish.
        drift_threshold: drift trigger — refit when the rolling mean
            absolute estimation error exceeds this value.
        drift_window: number of recent observations the drift statistic
            averages over.
        min_drift_observations: don't evaluate drift until at least this
            many errors are available (avoids firing on one bad query).
    """

    min_new_observations: int = 32
    drift_threshold: float = 0.1
    drift_window: int = 16
    min_drift_observations: int = 8

    def __post_init__(self) -> None:
        if self.min_new_observations < 1:
            raise ServingError("min_new_observations must be at least 1")
        if not (0.0 < self.drift_threshold <= 1.0):
            raise ServingError("drift_threshold must be in (0, 1]")
        if self.drift_window < 1:
            raise ServingError("drift_window must be at least 1")
        if self.min_drift_observations < 1:
            raise ServingError("min_drift_observations must be at least 1")

    def decide(
        self, pending_observations: int, recent_errors: Sequence[float]
    ) -> RefitDecision:
        """Evaluate both triggers against the current feedback state.

        Args:
            pending_observations: feedback recorded since the last publish.
            recent_errors: absolute ``|served - observed|`` errors, oldest
                first; only the trailing ``drift_window`` entries are used.
        """
        if pending_observations >= self.min_new_observations:
            return RefitDecision(
                True,
                f"count: {pending_observations} >= {self.min_new_observations}",
            )
        if pending_observations > 0 and len(recent_errors) >= self.min_drift_observations:
            window = list(recent_errors)[-self.drift_window:]
            mean_error = sum(window) / len(window)
            if mean_error > self.drift_threshold:
                return RefitDecision(
                    True,
                    f"drift: mean |error| {mean_error:.4f} > "
                    f"{self.drift_threshold:.4f} over {len(window)} queries",
                )
        return RefitDecision(False)
