"""When to retrain: count- and drift-based refit triggers.

The seed reproduction refit lazily — any estimate after new feedback paid
the full retraining cost inline.  The serving layer instead accumulates
feedback and asks a :class:`RefitPolicy` after every observation whether
a (background) refit is due:

* **count trigger** — at least ``min_new_observations`` pieces of
  feedback have arrived since the last published model, so the model is
  simply out of date;
* **drift trigger** — the served model is *wrong*: the mean absolute
  error between the estimate the current snapshot serves and the true
  selectivity the engine measured, over the last ``drift_window``
  observations, exceeds ``drift_threshold``.  This fires early under
  workload shift (the paper's Figure 7 scenario) even when the count
  trigger has not filled up.
* **shift trigger** — the served model *got worse*: the recent-window
  mean error exceeds ``drift_ratio`` times the key's **lifetime** mean
  error (tracked by :class:`~repro.serving.stats.ServingStats`).  The
  absolute drift trigger cannot see a distribution shift on a key whose
  normal error sits well below ``drift_threshold``; the relative
  trigger fires exactly when recent traffic stops looking like the
  traffic the model was trained on, which is what lets a
  streaming-window backend refit onto its window and track the shift.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import ServingError

__all__ = ["RefitDecision", "RefitPolicy"]


@dataclass(frozen=True)
class RefitDecision:
    """The policy's verdict plus a human-readable reason for metrics/logs.

    ``trigger`` names which rule fired (``"count"``, ``"drift"`` for the
    absolute threshold, ``"drift_shift"`` for the relative
    lifetime-comparison trigger; empty when no refit is due) so the
    serving stats can count drift-driven refits separately.
    """

    refit: bool
    reason: str = ""
    trigger: str = ""

    def __bool__(self) -> bool:
        return self.refit


@dataclass(frozen=True)
class RefitPolicy:
    """Tunable triggers deciding when accumulated feedback forces a refit.

    Attributes:
        min_new_observations: count trigger — refit once this many
            observations are pending since the last publish.
        drift_threshold: drift trigger — refit when the rolling mean
            absolute estimation error exceeds this value.
        drift_window: number of recent observations the drift statistic
            averages over.
        min_drift_observations: don't evaluate drift until at least this
            many errors are available (avoids firing on one bad query).
        drift_ratio: shift trigger — refit when the recent-window mean
            error exceeds this multiple of the key's lifetime mean error
            (None disables the relative trigger, the default: it needs
            the lifetime statistics the serving layer supplies).
        min_lifetime_observations: don't evaluate the shift trigger until
            the lifetime error statistic covers at least this many
            observations (a young model's lifetime mean is too noisy to
            divide by).
    """

    min_new_observations: int = 32
    drift_threshold: float = 0.1
    drift_window: int = 16
    min_drift_observations: int = 8
    drift_ratio: float | None = None
    min_lifetime_observations: int = 64

    def __post_init__(self) -> None:
        if self.min_new_observations < 1:
            raise ServingError("min_new_observations must be at least 1")
        if not (0.0 < self.drift_threshold <= 1.0):
            raise ServingError("drift_threshold must be in (0, 1]")
        if self.drift_window < 1:
            raise ServingError("drift_window must be at least 1")
        if self.min_drift_observations < 1:
            raise ServingError("min_drift_observations must be at least 1")
        if self.drift_ratio is not None and self.drift_ratio <= 1.0:
            raise ServingError("drift_ratio must exceed 1.0 when set")
        if self.min_lifetime_observations < 1:
            raise ServingError("min_lifetime_observations must be at least 1")

    def decide(
        self,
        pending_observations: int,
        recent_errors: Sequence[float],
        lifetime_error: float | None = None,
        lifetime_observations: int = 0,
    ) -> RefitDecision:
        """Evaluate the triggers against the current feedback state.

        Args:
            pending_observations: feedback recorded since the last publish.
            recent_errors: absolute ``|served - observed|`` errors, oldest
                first; only the trailing ``drift_window`` entries are used.
            lifetime_error: the key's lifetime mean absolute error (from
                :meth:`~repro.serving.stats.ServingStats.lifetime_backend_error`);
                None leaves the shift trigger dormant.
            lifetime_observations: how many observations that lifetime
                mean covers.
        """
        if pending_observations >= self.min_new_observations:
            return RefitDecision(
                True,
                f"count: {pending_observations} >= {self.min_new_observations}",
                trigger="count",
            )
        if pending_observations > 0 and len(recent_errors) >= self.min_drift_observations:
            window = list(recent_errors)[-self.drift_window:]
            mean_error = sum(window) / len(window)
            if mean_error > self.drift_threshold:
                return RefitDecision(
                    True,
                    f"drift: mean |error| {mean_error:.4f} > "
                    f"{self.drift_threshold:.4f} over {len(window)} queries",
                    trigger="drift",
                )
            if (
                self.drift_ratio is not None
                and lifetime_error is not None
                and lifetime_observations >= self.min_lifetime_observations
                # A lifetime mean of ~0 would make any error "a shift";
                # the absolute threshold owns that regime.
                and lifetime_error > 0.0
                and mean_error > self.drift_ratio * lifetime_error
            ):
                return RefitDecision(
                    True,
                    f"drift-shift: recent mean |error| {mean_error:.4f} > "
                    f"{self.drift_ratio:.1f}x lifetime {lifetime_error:.4f} "
                    f"over {len(window)} queries",
                    trigger="drift_shift",
                )
        return RefitDecision(False)
