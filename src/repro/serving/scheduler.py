"""Background execution of model refits.

:class:`RefitScheduler` decouples *deciding* to retrain (the policy, on
the serving thread) from *running* the retrain (here).  Two modes:

* ``"background"`` (default) — a single daemon worker thread drains a
  queue of refit jobs, so estimates keep being served from the current
  snapshot while training runs.  Jobs are **coalesced per key while
  queued**: a trigger for a key whose refit has not started yet is
  dropped (that refit will see the feedback).  A trigger that arrives
  while the key's refit is *running* is accepted and queued — the
  running refit trained before that feedback existed, so a follow-up is
  the only way it ever reaches a published model if the key then goes
  quiet.  This matters for the cluster's buffered writes, whose publish-
  time replay fires exactly while the refit job is still on the worker.
* ``"inline"`` — jobs run synchronously on the caller's thread; used by
  tests and by deployments that prefer deterministic refit points.
  Inline jobs are never coalesced (nothing is ever queued); a trigger
  fired from within a running inline job recurses, bounded by the
  policy (a fresh refit absorbs all pending feedback, so the nested
  decision comes up empty).

:meth:`RefitScheduler.drain` blocks until every submitted job has
finished — the synchronisation point tests and benchmarks use before
asserting on the published version.

Lifecycle is caller-proof: :meth:`RefitScheduler.shutdown` (and its
:meth:`~RefitScheduler.close` alias) is idempotent, and draining an
already-closed scheduler is a no-op — callers sharing a scheduler do not
need to coordinate who tears it down.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Hashable

from repro.exceptions import ServingError

__all__ = ["RefitScheduler"]


class RefitScheduler:
    """Runs refit jobs inline or on a single background worker thread."""

    def __init__(self, mode: str = "background") -> None:
        if mode not in ("background", "inline"):
            raise ServingError(f"unknown scheduler mode {mode!r}")
        self._mode = mode
        self._lock = threading.Lock()
        self._pending: set[Hashable] = set()
        self._queue: "queue.Queue[tuple[Hashable, Callable[[], None]] | None]" = (
            queue.Queue()
        )
        self._worker: threading.Thread | None = None
        self._closed = False
        self._submitted = 0
        self._coalesced = 0
        self._executed = 0
        self._failures: list[tuple[Hashable, Exception]] = []
        # Background jobs accepted but not yet finished; drain() waits on
        # this instead of queue.join() so a timed-out drain leaves no
        # waiter thread behind.
        self._unfinished = 0
        self._all_done = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """``"background"`` or ``"inline"``."""
        return self._mode

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` (or :meth:`close`) has been called."""
        with self._lock:
            return self._closed

    @property
    def submitted(self) -> int:
        """Jobs accepted for execution."""
        return self._submitted

    @property
    def coalesced(self) -> int:
        """Triggers dropped because the same key was already pending."""
        return self._coalesced

    @property
    def executed(self) -> int:
        """Jobs that finished (successfully or not)."""
        return self._executed

    @property
    def failures(self) -> list[tuple[Hashable, Exception]]:
        """(key, exception) pairs from jobs that raised."""
        with self._lock:
            return list(self._failures)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, key: Hashable, job: Callable[[], None]) -> bool:
        """Schedule ``job`` for ``key``; returns False if coalesced away.

        Only *queued* jobs coalesce: the pending set holds keys whose
        job has not started yet, so a trigger landing mid-refit queues a
        follow-up instead of being dropped.
        """
        with self._lock:
            if self._closed:
                raise ServingError("scheduler has been shut down")
            if key in self._pending:
                self._coalesced += 1
                return False
            self._submitted += 1
            if self._mode == "background":
                # Enqueue while still holding the lock so a concurrent
                # shutdown() cannot slip its stop sentinel in front of
                # this job (stranding it forever).
                self._pending.add(key)
                self._unfinished += 1
                self._ensure_worker_locked()
                self._queue.put((key, job))
                return True
        self._run(key, job)
        return True

    def drain(self, timeout: float | None = None) -> None:
        """Block until all submitted jobs have completed.

        ``timeout`` bounds the wait (seconds); raises :class:`ServingError`
        if jobs are still outstanding when it expires.  Draining an
        already-closed (or never-used) scheduler returns immediately.
        """
        if self._mode == "inline":
            return
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._all_done:
            while self._unfinished:
                if deadline is None:
                    self._all_done.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._all_done.wait(remaining):
                    if self._unfinished:
                        raise ServingError(
                            f"refit jobs still running after {timeout}s"
                        )

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting jobs and stop the worker once the queue drains.

        Raises :class:`ServingError` if the worker is still busy (e.g. a
        long refit) when ``timeout`` expires — quiescence was *not*
        reached; call again to keep waiting.  Idempotent otherwise:
        shutting down twice (or from several owners) is a no-op.
        """
        with self._lock:
            worker = self._worker
            if not self._closed:
                self._closed = True
                if worker is not None:
                    # Under the same lock as submit's enqueue, so the stop
                    # sentinel is strictly after every accepted job.
                    self._queue.put(None)
        if worker is not None:
            worker.join(timeout)
            if worker.is_alive():
                raise ServingError(
                    f"refit worker still running after {timeout}s; "
                    "call shutdown() again to keep waiting"
                )

    def close(self, timeout: float = 5.0) -> None:
        """Alias for :meth:`shutdown`; idempotent like it."""
        self.shutdown(timeout)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_worker_locked(self) -> None:
        """Start the worker thread if needed; caller holds ``self._lock``."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._worker_loop,
                name="repro-serving-refit",
                daemon=True,
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            key, job = item
            # Leave the pending set before running, not after: a trigger
            # fired during the job (e.g. the cluster's publish-time
            # backlog replay) must queue a follow-up refit, or feedback
            # the running job trained without would never be retrained
            # for a key that then goes quiet.
            with self._lock:
                self._pending.discard(key)
            try:
                self._run(key, job)
            finally:
                with self._all_done:
                    self._unfinished -= 1
                    if not self._unfinished:
                        self._all_done.notify_all()

    def _run(self, key: Hashable, job: Callable[[], None]) -> None:
        try:
            job()
        except Exception as error:  # noqa: BLE001 - jobs must not kill the worker
            with self._lock:
                self._failures.append((key, error))
                del self._failures[:-32]
        finally:
            with self._lock:
                self._executed += 1
