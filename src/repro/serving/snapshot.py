"""Immutable, versioned model snapshots.

A :class:`ModelSnapshot` freezes one trained
:class:`~repro.estimators.backend.ServableModel` — any immutable value
object with ``estimate_many``/``parameter_count``, e.g. a
:class:`~repro.core.mixture.UniformMixtureModel` or a frozen baseline
estimator — together with the metadata the serving layer needs: a
monotonically increasing version number, the domain it was trained over,
and how much feedback it had seen.  Snapshots are what
:class:`~repro.serving.registry.EstimatorRegistry` hands to readers, so
an estimate always runs against one consistent model even while a
background refit is publishing the next version — the snapshot-consistency
discipline that conditioning a live probabilistic model requires.

Batch dispatch is capability-based: models exposing
``estimate_from_bounds`` (QuickSel's mixture model, the bucket
histograms, AutoHist) get the vectorised fast path — the whole batch is
lowered to raw piece bounds once and evaluated in one kernel call —
while anything else is served through its own ``estimate_many`` (which
may be the :class:`~repro.estimators.base.SelectivityEstimator` scalar
loop fallback).  Either way the batch result is elementwise equal to the
scalar path.

Version 0 is the *bootstrap* snapshot: no model yet, so estimates fall
back to the uniform distribution over the domain (the predicate's volume
fraction), matching QuickSel's documented initial state with only the
default query ``(P_0, 1)``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
import time

import numpy as np

from repro.core.geometry import Hyperrectangle, intersection_volumes_from_bounds
from repro.core.predicate import Predicate, lower_batch
from repro.core.region import Region
from repro.estimators.backend import ServableModel
from repro.exceptions import ServingError

__all__ = ["ModelSnapshot"]

PredicateLike = Predicate | Hyperrectangle | Region


@dataclass(frozen=True)
class ModelSnapshot:
    """One immutable version of a served selectivity model.

    Attributes:
        version: monotonically increasing per model key; 0 is bootstrap.
        domain: the data domain ``B_0`` the model covers.
        model: the frozen servable model (None for the bootstrap
            snapshot).  Must not be mutated after publication — backends
            guarantee this by publishing value objects or frozen copies.
        trained_on: number of observed queries the model was fitted to.
        created_at: wall-clock publication time (``time.time()``).
    """

    version: int
    domain: Hyperrectangle
    model: ServableModel | None
    trained_on: int = 0
    created_at: float = field(default_factory=time.time)

    @property
    def is_bootstrap(self) -> bool:
        """True for the pre-training uniform snapshot (version 0)."""
        return self.model is None

    @property
    def parameter_count(self) -> int:
        """Parameters held by the served model (0 at bootstrap)."""
        return 0 if self.model is None else self.model.parameter_count

    def estimate(self, predicate: PredicateLike) -> float:
        """Estimate the selectivity of one predicate under this version.

        Delegates to :meth:`estimate_many`, so the scalar and batch
        serving paths are the same code — parity between
        ``service.estimate`` and ``service.estimate_batch`` holds by
        construction, and both match the bare backend's estimate on the
        same model to floating-point dot-order differences (< 1e-12).
        """
        return float(self.estimate_many([predicate])[0])

    def estimate_many(self, predicates: Sequence[PredicateLike]) -> np.ndarray:
        """Vectorised batch estimation under this version.

        Elementwise equal to :meth:`estimate` (to floating-point dot-order
        differences, < 1e-12).  Models with an ``estimate_from_bounds``
        surface get the whole batch lowered once via
        :func:`~repro.core.predicate.lower_batch` and evaluated through a
        single raw-bounds kernel call; other models answer through their
        own ``estimate_many`` (the loop fallback for plain estimators).
        """
        model = self.model
        if model is not None:
            fast = getattr(model, "estimate_from_bounds", None)
            if fast is not None:
                piece_lower, piece_upper, owners = lower_batch(
                    predicates, self.domain
                )
                return np.asarray(
                    fast(piece_lower, piece_upper, owners, len(predicates)),
                    dtype=float,
                )
            return np.asarray(
                model.estimate_many(list(predicates)), dtype=float
            )
        piece_lower, piece_upper, owners = lower_batch(predicates, self.domain)
        domain_volume = self.domain.volume
        if domain_volume <= 0.0:
            raise ServingError("cannot serve a zero-volume domain")
        estimates = np.zeros(len(predicates))
        if owners:
            # Region pieces arrive unclipped from lower_batch; only the
            # part inside the domain carries probability mass.
            volumes = intersection_volumes_from_bounds(
                np.stack(piece_lower),
                np.stack(piece_upper),
                self.domain.lower[None, :],
                self.domain.upper[None, :],
            )[:, 0]
            estimates = np.bincount(
                np.asarray(owners, dtype=np.intp),
                weights=volumes / domain_volume,
                minlength=len(predicates),
            )
        return np.clip(estimates, 0.0, 1.0)

    def __repr__(self) -> str:
        kind = "bootstrap" if self.is_bootstrap else "trained"
        return (
            f"ModelSnapshot(version={self.version}, {kind}, "
            f"trained_on={self.trained_on})"
        )
