"""Operational metrics for the serving layer.

:class:`ServingStats` is a small thread-safe metrics surface: request and
cache counters, refit counts, and a bounded reservoir of per-request
latencies from which p50/p99 are computed on demand.  It deliberately has
no external dependencies — :meth:`ServingStats.snapshot` returns a plain
dict that callers can ship to whatever metrics system they run.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from repro.exceptions import ServingError

__all__ = ["ServingStats"]


class ServingStats:
    """Counters and latency percentiles for a :class:`SelectivityService`."""

    def __init__(self, latency_window: int = 4096) -> None:
        if latency_window < 1:
            raise ServingError("latency_window must be at least 1")
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self.estimate_requests = 0
        self.batch_requests = 0
        self.predicates_served = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.observations = 0
        self.refits_triggered = 0
        self.refits_completed = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_estimate(self, seconds: float, cache_hit: bool) -> None:
        """Record one scalar estimate call."""
        with self._lock:
            self.estimate_requests += 1
            self.predicates_served += 1
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self._latencies.append(seconds)

    def record_batch(self, count: int, hits: int, seconds: float) -> None:
        """Record one ``estimate_batch`` call covering ``count`` predicates."""
        with self._lock:
            self.batch_requests += 1
            self.predicates_served += count
            self.cache_hits += hits
            self.cache_misses += count - hits
            self._latencies.append(seconds)

    def record_observation(self) -> None:
        """Record one piece of feedback flowing into the service."""
        with self._lock:
            self.observations += 1

    def record_observations(self, count: int) -> None:
        """Record a batch of feedback under one lock acquisition."""
        if count < 0:
            raise ServingError("observation count must be non-negative")
        with self._lock:
            self.observations += count

    def record_refit_triggered(self) -> None:
        """A policy trigger fired (the refit may still be coalesced)."""
        with self._lock:
            self.refits_triggered += 1

    def record_refit_completed(self) -> None:
        """A refit finished and its model was published."""
        with self._lock:
            self.refits_completed += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Cache hit rate over all predicates served (0.0 when idle)."""
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def latency_values(self) -> tuple[float, ...]:
        """The recent-latency reservoir, oldest first.

        Cross-service aggregators (e.g. the cluster's
        :class:`~repro.cluster.stats.ClusterStats`) merge these windows to
        compute fleet-wide percentiles instead of averaging per-shard
        percentiles (which would be statistically meaningless).
        """
        with self._lock:
            return tuple(self._latencies)

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile (seconds) over the recent request window."""
        if not (0.0 <= percentile <= 100.0):
            raise ServingError("percentile must be in [0, 100]")
        with self._lock:
            if not self._latencies:
                return 0.0
            return float(np.percentile(np.array(self._latencies), percentile))

    @property
    def p50_latency_seconds(self) -> float:
        """Median request latency."""
        return self.latency_percentile(50.0)

    @property
    def p99_latency_seconds(self) -> float:
        """Tail request latency."""
        return self.latency_percentile(99.0)

    def counters(self) -> dict[str, int]:
        """The plain counters under one lock acquisition.

        Unlike :meth:`snapshot`, computes no percentiles — aggregators
        that only sum counters (the cluster's fleet stats) use this to
        avoid touching the latency reservoir at all.
        """
        with self._lock:
            return {
                "estimate_requests": self.estimate_requests,
                "batch_requests": self.batch_requests,
                "predicates_served": self.predicates_served,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "observations": self.observations,
                "refits_triggered": self.refits_triggered,
                "refits_completed": self.refits_completed,
            }

    def snapshot(self) -> dict[str, float]:
        """A plain-dict view of every counter plus derived metrics."""
        counters: dict[str, float] = dict(self.counters())
        counters["hit_rate"] = self.hit_rate
        counters["p50_latency_seconds"] = self.p50_latency_seconds
        counters["p99_latency_seconds"] = self.p99_latency_seconds
        return counters

    def __repr__(self) -> str:
        return (
            f"ServingStats(served={self.predicates_served}, "
            f"hit_rate={self.hit_rate:.2f}, refits={self.refits_completed})"
        )
