"""Operational metrics for the serving layer.

:class:`ServingStats` is a small thread-safe metrics surface: request and
cache counters, refit counts, and a bounded reservoir of per-request
latencies from which p50/p99 are computed on demand.  It deliberately has
no external dependencies — :meth:`ServingStats.snapshot` returns a plain
dict that callers can ship to whatever metrics system they run.

A/B serving adds a per-backend error surface: every observation's
``|served - true|`` error is recorded under ``(model key, backend
name)``, for the champion and for any mirrored challenger, so operators
can read "QuickSel vs ST-Holes on table X" straight off the stats — the
evidence a :meth:`~repro.serving.service.SelectivityService.promote`
decision is made on.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ServingError

__all__ = ["ServingStats"]


class ServingStats:
    """Counters and latency percentiles for a :class:`SelectivityService`."""

    def __init__(
        self, latency_window: int = 4096, backend_error_window: int = 512
    ) -> None:
        if latency_window < 1:
            raise ServingError("latency_window must be at least 1")
        if backend_error_window < 1:
            raise ServingError("backend_error_window must be at least 1")
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._backend_error_window = backend_error_window
        # (model key string, backend name) -> recent |served - true| errors.
        self._backend_errors: dict[tuple[str, str], deque[float]] = {}
        # (model key string, backend name) -> [count, error sum] over the
        # backend's whole service lifetime — the denominator of the
        # relative drift (shift) trigger.  Unlike the bounded windows
        # above these never forget (except on hand-off/unregister).
        self._lifetime_errors: dict[tuple[str, str], list[float]] = {}
        self.estimate_requests = 0
        self.batch_requests = 0
        self.predicates_served = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.observations = 0
        self.challenger_observations = 0
        self.refits_triggered = 0
        self.drift_refits_triggered = 0
        self.refits_completed = 0
        self.challenger_refits = 0
        self.promotions = 0
        self.sandwich_estimates = 0
        self.sandwich_learned = 0
        self.sandwich_independence = 0
        self.sandwich_upper_clamps = 0
        self.sandwich_lower_clamps = 0
        self.checkpoints_taken = 0
        self.checkpoint_restores = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_estimate(self, seconds: float, cache_hit: bool) -> None:
        """Record one scalar estimate call."""
        with self._lock:
            self.estimate_requests += 1
            self.predicates_served += 1
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self._latencies.append(seconds)

    def record_estimates(
        self, count: int, hits: int, latencies: Sequence[float]
    ) -> None:
        """Record a burst of scalar estimate calls under one lock acquisition.

        The fast-slot flush path (see
        :meth:`~repro.serving.service.SelectivityService.fast_slot`):
        ``count`` scalar requests of which ``hits`` were cache hits, with
        their individual latencies — identical totals to ``count``
        :meth:`record_estimate` calls, at one lock round-trip.
        """
        if count < 0 or hits < 0 or hits > count:
            raise ServingError("need 0 <= hits <= count")
        if count == 0:
            return
        with self._lock:
            self.estimate_requests += count
            self.predicates_served += count
            self.cache_hits += hits
            self.cache_misses += count - hits
            self._latencies.extend(latencies)

    def record_batch(self, count: int, hits: int, seconds: float) -> None:
        """Record one ``estimate_batch`` call covering ``count`` predicates."""
        with self._lock:
            self.batch_requests += 1
            self.predicates_served += count
            self.cache_hits += hits
            self.cache_misses += count - hits
            self._latencies.append(seconds)

    def record_observation(self) -> None:
        """Record one piece of feedback flowing into the service."""
        with self._lock:
            self.observations += 1

    def record_observations(self, count: int) -> None:
        """Record a batch of feedback under one lock acquisition."""
        if count < 0:
            raise ServingError("observation count must be non-negative")
        with self._lock:
            self.observations += count

    def record_mirrored_observations(self, count: int) -> None:
        """Feedback mirrored to a shadowing challenger backend."""
        if count < 0:
            raise ServingError("observation count must be non-negative")
        with self._lock:
            self.challenger_observations += count

    def record_backend_errors(
        self, model: object, backend: str, errors: Sequence[float]
    ) -> None:
        """Record ``|served - true|`` errors for one key's backend.

        ``model`` is rendered with ``str`` so the surface stays a plain
        dict; both the champion and any challenger report here under
        their own backend name, which is what makes the per-key A/B
        error comparison readable from one place.
        """
        if not errors:
            return
        scope = (str(model), backend)
        with self._lock:
            window = self._backend_errors.get(scope)
            if window is None:
                window = deque(maxlen=self._backend_error_window)
                self._backend_errors[scope] = window
            window.extend(errors)
            lifetime = self._lifetime_errors.setdefault(scope, [0, 0.0])
            lifetime[0] += len(errors)
            lifetime[1] += float(sum(errors))

    def forget_backend_errors(
        self, model: object, backend: str | None = None
    ) -> None:
        """Drop a key's backend-error windows (hand-off/unregister).

        With ``backend`` given, only that backend's window goes — a
        retired challenger must not leak its history into a later
        challenger that happens to share the backend name; with
        ``backend=None`` the whole key is forgotten (champion
        hand-off).
        """
        name = str(model)
        with self._lock:
            for store in (self._backend_errors, self._lifetime_errors):
                for scope in [
                    s
                    for s in store
                    if s[0] == name and (backend is None or s[1] == backend)
                ]:
                    del store[scope]

    def record_refit_triggered(self) -> None:
        """A policy trigger fired (the refit may still be coalesced)."""
        with self._lock:
            self.refits_triggered += 1

    def record_drift_refit_triggered(self) -> None:
        """A drift trigger (absolute or relative) forced the refit.

        Counted *in addition to* :meth:`record_refit_triggered` — the
        ratio of the two counters is the share of refits driven by the
        model being wrong rather than merely out of date.
        """
        with self._lock:
            self.drift_refits_triggered += 1

    def record_refit_completed(self) -> None:
        """A refit finished and its model was published."""
        with self._lock:
            self.refits_completed += 1

    def record_challenger_refit(self) -> None:
        """A challenger refit finished and its snapshot was published."""
        with self._lock:
            self.challenger_refits += 1

    def record_promotion(self) -> None:
        """A challenger was atomically promoted to champion."""
        with self._lock:
            self.promotions += 1

    def record_checkpoint(self) -> None:
        """One durable checkpoint bundle was written for a key."""
        with self._lock:
            self.checkpoints_taken += 1

    def record_checkpoint_restore(self) -> None:
        """One key was rebuilt from its latest checkpoint at boot."""
        with self._lock:
            self.checkpoint_restores += 1

    def record_sandwich(self, source: str, clamped: str | None) -> None:
        """One sandwiched join estimate was served.

        ``source`` says what produced the pre-clamp cardinality
        (``"learned"`` from a served join model, ``"independence"`` from
        the textbook fallback); ``clamped`` says which pessimistic bound
        won, if any (``"upper"``, ``"lower"``, or ``None`` when the raw
        estimate already lay inside the sandwich).  The clamp counters
        are the observability the sandwich exists for: a high
        ``sandwich_upper_clamps`` share means the learned model is
        over-estimating into territory the MCV bounds prove impossible.
        """
        if source not in ("learned", "independence"):
            raise ServingError(f"unknown sandwich source {source!r}")
        if clamped not in (None, "upper", "lower"):
            raise ServingError(f"unknown sandwich clamp side {clamped!r}")
        with self._lock:
            self.sandwich_estimates += 1
            if source == "learned":
                self.sandwich_learned += 1
            else:
                self.sandwich_independence += 1
            if clamped == "upper":
                self.sandwich_upper_clamps += 1
            elif clamped == "lower":
                self.sandwich_lower_clamps += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Cache hit rate over all predicates served (0.0 when idle)."""
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def latency_values(self) -> tuple[float, ...]:
        """The recent-latency reservoir, oldest first.

        Cross-service aggregators (e.g. the cluster's
        :class:`~repro.cluster.stats.ClusterStats`) merge these windows to
        compute fleet-wide percentiles instead of averaging per-shard
        percentiles (which would be statistically meaningless).
        """
        with self._lock:
            return tuple(self._latencies)

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile (seconds) over the recent request window."""
        if not (0.0 <= percentile <= 100.0):
            raise ServingError("percentile must be in [0, 100]")
        with self._lock:
            if not self._latencies:
                return 0.0
            return float(np.percentile(np.array(self._latencies), percentile))

    @property
    def p50_latency_seconds(self) -> float:
        """Median request latency."""
        return self.latency_percentile(50.0)

    @property
    def p99_latency_seconds(self) -> float:
        """Tail request latency."""
        return self.latency_percentile(99.0)

    def backend_errors(self) -> dict[str, dict[str, float]]:
        """Mean absolute error per ``{model key: {backend name: error}}``.

        The A/B readout: with a challenger mirrored behind a key, the
        key's dict holds one entry per backend over each backend's
        recent error window.  Keys with no recorded errors are absent.
        """
        with self._lock:
            view: dict[str, dict[str, float]] = {}
            for (model, backend), window in self._backend_errors.items():
                if window:
                    view.setdefault(model, {})[backend] = float(
                        sum(window) / len(window)
                    )
            return view

    def backend_error_windows(self) -> dict[tuple[str, str], tuple[float, ...]]:
        """The raw per-(key, backend) error windows, oldest first.

        Fleet aggregators (:class:`~repro.cluster.stats.ClusterStats`)
        merge these instead of averaging per-shard means.
        """
        with self._lock:
            return {
                scope: tuple(window)
                for scope, window in self._backend_errors.items()
                if window
            }

    def lifetime_backend_error(
        self, model: object, backend: str
    ) -> tuple[int, float]:
        """``(count, mean |error|)`` over the backend's whole lifetime.

        The shift trigger's denominator: the refit policy compares the
        recent drift window against this to decide whether the key's
        traffic stopped looking like what the model was trained on.
        ``(0, 0.0)`` when nothing has been recorded.
        """
        with self._lock:
            lifetime = self._lifetime_errors.get((str(model), backend))
            if not lifetime or not lifetime[0]:
                return 0, 0.0
            return int(lifetime[0]), lifetime[1] / lifetime[0]

    def lifetime_error_totals(self) -> dict[tuple[str, str], tuple[int, float]]:
        """Raw per-(key, backend) lifetime ``(count, error sum)`` pairs.

        Migration reads these before a hand-off and replays them into
        the destination via :meth:`absorb_lifetime_errors`, so a moved
        key's shift trigger keeps its full denominator history.
        """
        with self._lock:
            return {
                scope: (int(count), float(total))
                for scope, (count, total) in self._lifetime_errors.items()
                if count
            }

    def absorb_lifetime_errors(
        self, totals: dict[tuple[object, str], tuple[int, float]]
    ) -> None:
        """Install migrated lifetime accumulators, replacing any local ones.

        *Replace*, not add: the hand-off replays the bounded error
        windows first (via :meth:`record_backend_errors`, which also
        bumps the lifetime accumulators), and the source's totals
        already contain those observations — adding would double-count
        the window.
        """
        with self._lock:
            for (model, backend), (count, total) in totals.items():
                if count < 0 or not np.isfinite(total):
                    raise ServingError(
                        f"invalid lifetime error totals for {(model, backend)}"
                    )
                self._lifetime_errors[(str(model), backend)] = [
                    int(count),
                    float(total),
                ]

    def counters(self) -> dict[str, int]:
        """The plain counters under one lock acquisition.

        Unlike :meth:`snapshot`, computes no percentiles — aggregators
        that only sum counters (the cluster's fleet stats) use this to
        avoid touching the latency reservoir at all.
        """
        with self._lock:
            return {
                "estimate_requests": self.estimate_requests,
                "batch_requests": self.batch_requests,
                "predicates_served": self.predicates_served,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "observations": self.observations,
                "challenger_observations": self.challenger_observations,
                "refits_triggered": self.refits_triggered,
                "drift_refits_triggered": self.drift_refits_triggered,
                "refits_completed": self.refits_completed,
                "challenger_refits": self.challenger_refits,
                "promotions": self.promotions,
                "sandwich_estimates": self.sandwich_estimates,
                "sandwich_learned": self.sandwich_learned,
                "sandwich_independence": self.sandwich_independence,
                "sandwich_upper_clamps": self.sandwich_upper_clamps,
                "sandwich_lower_clamps": self.sandwich_lower_clamps,
                "checkpoints_taken": self.checkpoints_taken,
                "checkpoint_restores": self.checkpoint_restores,
            }

    def snapshot(self) -> dict[str, object]:
        """A plain-dict view of every counter plus derived metrics.

        Includes the per-key :meth:`backend_errors` A/B surface, so a
        plain single-service deployment ships the same promote evidence
        the cluster's ``stats.snapshot()['backend_errors']`` exports.
        """
        counters: dict[str, object] = dict(self.counters())
        counters["hit_rate"] = self.hit_rate
        counters["p50_latency_seconds"] = self.p50_latency_seconds
        counters["p99_latency_seconds"] = self.p99_latency_seconds
        counters["backend_errors"] = self.backend_errors()
        return counters

    def __repr__(self) -> str:
        return (
            f"ServingStats(served={self.predicates_served}, "
            f"hit_rate={self.hit_rate:.2f}, refits={self.refits_completed})"
        )
