"""The wire protocol: length-prefixed frames and the message vocabulary.

Framing is deliberately minimal — every message is::

    [4-byte big-endian payload length][pickled payload]

with a hard frame-size ceiling (:data:`MAX_FRAME_BYTES`) so a corrupted
or hostile length prefix cannot make a peer allocate unbounded memory.
The payload is a :class:`Request` or :class:`Response`.  Helpers are
provided for both transports in play: blocking sockets
(:func:`send_message` / :func:`recv_message`, used by the worker server
and the synchronous client) and asyncio streams (:func:`write_message` /
:func:`read_message`, used by the gateway).

Requests carry a per-connection ``request_id``; responses echo it.
Nothing in the framing requires responses to come back in request order
— that is what lets both the worker (thread-pool dispatch) and the
gateway (one asyncio task per request) pipeline concurrent requests on
a single connection.

Payloads are pickled (protocol 5).  That is a *trust* decision, made
explicit here: this protocol is for links you already trust end to end
(localhost worker fleets, a private mesh) — exactly the boundary
``multiprocessing`` draws.  Do not expose a worker or gateway port to
untrusted peers; TLS/auth is a roadmap item.

Snapshot/backend serialisation contract
---------------------------------------
:func:`encode_snapshot`/:func:`decode_snapshot` round-trip a
:class:`~repro.serving.snapshot.ModelSnapshot`:

* estimates are preserved to ≤ 1e-12 (numpy arrays pickle bit-exactly;
  the property tests in ``tests/test_net_protocol.py`` hold every
  backend family to this),
* version / domain / ``trained_on`` / ``created_at`` metadata are
  preserved exactly,
* no data source and no replay history ever crosses the wire: snapshots
  are built from ``frozen_copy()`` models, which detach both (the PR 4
  invariant), and :func:`encode_snapshot` refuses a snapshot whose
  model still drags a live data source.

:func:`encode_backend`/:func:`decode_backend` ship a *trainer* (model
registration and cross-process migration).  Query-driven backends and
QuickSel ship whole — model plus pending feedback, so a migrated
trainer retrains identically on the destination.  Scan backends ship
with the data source detached (the dataset never crosses the wire): the
decoded backend serves its frozen statistics exactly but cannot rescan
until a new data source is attached via
:func:`attach_data_source`.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
from dataclasses import dataclass, field
from typing import Any

from repro import exceptions
from repro.estimators.backend import ScanBackend, as_backend
from repro.estimators.base import DataSource, ScanBasedEstimator
from repro.exceptions import NetError, RemoteError
from repro.serving.snapshot import ModelSnapshot

__all__ = [
    "MAX_FRAME_BYTES",
    "Request",
    "Response",
    "encode_frame",
    "decode_frame",
    "send_message",
    "recv_message",
    "write_message",
    "read_message",
    "encode_snapshot",
    "decode_snapshot",
    "encode_backend",
    "decode_backend",
    "attach_data_source",
    "error_response",
    "raise_remote_error",
    "frame_stream",
]

_LENGTH = struct.Struct("!I")

#: Hard ceiling on one frame's payload (256 MiB).  Far above any real
#: snapshot (frozen models track model size, not feedback history) but
#: small enough that a garbage length prefix fails fast.
MAX_FRAME_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class Request:
    """One remote call: ``method`` plus its keyword arguments.

    ``request_id`` is unique per connection (the sender assigns it);
    the response echoes it, which is the whole pipelining mechanism.
    """

    request_id: int
    method: str
    kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Response:
    """The reply to one :class:`Request`.

    ``ok`` responses carry the call's return value in ``value``;
    failures carry the exception's type name and message instead, so
    the caller can re-raise the matching local type (see
    :func:`raise_remote_error`).
    """

    request_id: int
    ok: bool
    value: Any = None
    error_type: str | None = None
    error_message: str | None = None


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(message: object) -> bytes:
    """Serialise one message into a length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise NetError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> object:
    """Deserialise one frame's payload (the bytes after the prefix)."""
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise NetError(f"undecodable frame payload: {error}") from error


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise NetError(
            f"incoming frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling; closing the connection"
        )


def send_message(sock: socket.socket, message: object) -> None:
    """Write one framed message to a blocking socket."""
    sock.sendall(encode_frame(message))


def recv_message(sock: socket.socket) -> object:
    """Read one framed message from a blocking socket.

    Raises :class:`EOFError` on a clean close at a frame boundary (the
    peer hung up between messages) and :class:`NetError` on a close
    mid-frame (the message was truncated).
    """
    header = _recv_exact(sock, _LENGTH.size, mid_frame=False)
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    return decode_frame(_recv_exact(sock, length, mid_frame=True))


def _recv_exact(sock: socket.socket, count: int, mid_frame: bool) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if mid_frame or len(chunks) > 0:
                raise NetError(
                    "connection closed mid-frame "
                    f"({count - remaining} of {count} bytes received)"
                )
            raise EOFError("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


async def write_message(writer, message: object) -> None:
    """Write one framed message to an asyncio stream writer and drain."""
    writer.write(encode_frame(message))
    await writer.drain()


async def read_message(reader) -> object:
    """Read one framed message from an asyncio stream reader.

    Raises :class:`EOFError` on a clean close at a frame boundary and
    :class:`NetError` on truncation, mirroring :func:`recv_message`.
    """
    import asyncio

    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise EOFError("connection closed") from error
        raise NetError("connection closed mid-frame") from error
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise NetError("connection closed mid-frame") from error
    return decode_frame(payload)


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------
def error_response(request_id: int, error: BaseException) -> Response:
    """Build the failure :class:`Response` for an exception."""
    return Response(
        request_id=request_id,
        ok=False,
        error_type=type(error).__name__,
        error_message=str(error),
    )


def raise_remote_error(response: Response) -> None:
    """Re-raise a failure response as the matching local exception.

    Errors from the repro hierarchy come back as their own types
    (``ServingError`` on the worker is ``ServingError`` here, so
    existing ``except ServingError`` retry paths work unchanged over the
    wire); anything else — a numpy error, a KeyError in user code —
    surfaces as :class:`~repro.exceptions.RemoteError` carrying the
    original type name.
    """
    if response.ok:
        return
    name = response.error_type or "RemoteError"
    message = response.error_message or ""
    local = getattr(exceptions, name, None)
    if isinstance(local, type) and issubclass(local, exceptions.ReproError):
        raise local(message)
    raise RemoteError(f"{name}: {message}")


# ----------------------------------------------------------------------
# Snapshot / backend serialisation
# ----------------------------------------------------------------------
def _pickled(value: object, what: str) -> bytes:
    try:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        raise NetError(f"cannot serialise {what}: {error}") from error


def encode_snapshot(snapshot: ModelSnapshot) -> bytes:
    """Serialise a :class:`ModelSnapshot` for the wire.

    The round-trip contract (checked by the property tests): estimates
    preserved to ≤ 1e-12, metadata preserved exactly, no data source or
    replay history in the payload.  A snapshot whose model still holds a
    live scan data source (i.e. was not built via ``frozen_copy()``) is
    refused — it would drag the dataset across the wire.
    """
    model = snapshot.model
    if model is not None and isinstance(model, ScanBasedEstimator):
        source = getattr(model, "_data_source", None)
        if source is not None and not _is_detached_source(source):
            raise NetError(
                "refusing to serialise a snapshot whose scan model still "
                "holds a live data source; publish frozen_copy() models"
            )
    return _pickled(snapshot, "model snapshot")


def decode_snapshot(data: bytes) -> ModelSnapshot:
    """Deserialise a snapshot produced by :func:`encode_snapshot`."""
    snapshot = decode_frame(data)
    if not isinstance(snapshot, ModelSnapshot):
        raise NetError(
            f"decoded object is {type(snapshot).__name__}, not a ModelSnapshot"
        )
    return snapshot


def _is_detached_source(source: object) -> bool:
    return getattr(source, "__name__", "") == "_frozen_data_source"


def encode_backend(backend: object) -> bytes:
    """Serialise a trainable backend (registration / migration payload).

    ``backend`` may be anything ``register_model`` accepts; it is
    coerced through :func:`~repro.estimators.backend.as_backend` first
    so the object that crosses the wire is the same wrapper the serving
    layer would own.  Scan backends are serialised with their data
    source swapped for the frozen stub — the dataset stays on the
    sending side; the receiver serves the shipped statistics exactly
    and must :func:`attach_data_source` before any rescan.
    """
    backend = as_backend(backend)
    if isinstance(backend, ScanBackend):
        estimator = backend.estimator
        source = estimator._data_source
        from repro.estimators.base import _frozen_data_source

        estimator._data_source = _frozen_data_source
        try:
            return _pickled(backend, "scan backend")
        finally:
            estimator._data_source = source
    return _pickled(backend, "trainable backend")


def decode_backend(data: bytes) -> object:
    """Deserialise a backend produced by :func:`encode_backend`."""
    backend = decode_frame(data)
    return as_backend(backend)


def attach_data_source(backend: object, data_source: DataSource) -> None:
    """Re-attach a data source to a scan backend that crossed the wire.

    Cross-process hand-off ships scan statistics without their dataset;
    the receiving deployment points the backend at its local copy of the
    data with this before the refit policy's next rescan trigger.
    """
    backend = as_backend(backend)
    if not isinstance(backend, ScanBackend):
        raise NetError(
            f"{type(backend).__name__} has no data source to attach; only "
            "scan backends rescan"
        )
    backend.estimator._data_source = data_source


def frame_stream(data: bytes):
    """Iterate messages out of a byte buffer (testing/debug helper)."""
    view = io.BytesIO(data)
    while True:
        header = view.read(_LENGTH.size)
        if not header:
            return
        if len(header) < _LENGTH.size:
            raise NetError("trailing bytes do not form a frame header")
        (length,) = _LENGTH.unpack(header)
        _check_length(length)
        payload = view.read(length)
        if len(payload) < length:
            raise NetError("truncated frame at end of buffer")
        yield decode_frame(payload)
