"""The out-of-process shard: a ShardWorker behind a threaded TCP server.

:class:`WorkerServer` owns one :class:`~repro.cluster.shard.ShardWorker`
— a complete serving stack (registry, cache, scheduler, stats, write
buffer) — and services the wire protocol over blocking sockets.  Each
accepted connection gets a reader thread; decoded requests are handed to
a small dispatch pool and responses are written back under a
per-connection lock, so responses may return out of request order — the
``request_id`` echo is what lets the gateway pipeline many concurrent
requests down one connection.

:class:`WorkerProcess` launches a server in a child interpreter (spawn
context, so no forked locks or schedulers are inherited) and reports the
bound address back through a pipe.  This is the piece that actually
bypasses the GIL: each worker process serves its keys under its own
interpreter, and fleet throughput is the sum.

Migration across the process boundary reuses the in-process cluster's
exact-snapshot hand-off verbatim, just split at the wire: ``migrate_out``
performs the source half (flush → refit drain → drift/A-B evidence
collection → trainer withdrawal) and returns one picklable bundle;
``migrate_in`` performs the destination half (re-registration with
``refit_backlog=False`` — a migration moves a model, it does not
retrain).
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.exceptions import NetError, ServingError, WorkerUnavailableError
from repro.serving.policy import RefitPolicy
from repro.serving.registry import ModelKey, normalize_key
from repro.cluster.shard import ShardWorker
from repro.net.checkpoint import (
    CheckpointStore,
    checkpoint_bundle,
    restore_bundle,
)
from repro.net.protocol import (
    Request,
    Response,
    decode_backend,
    encode_backend,
    encode_snapshot,
    error_response,
    recv_message,
    send_message,
)

__all__ = [
    "WorkerServer",
    "WorkerProcess",
    "run_worker",
    "migration_bundle",
    "install_bundle",
]


def migration_bundle(worker: ShardWorker, key: ModelKey) -> dict[str, Any]:
    """Withdraw ``key`` from ``worker`` into one picklable hand-off bundle.

    The source half of the cluster's exact-snapshot migration: buffered
    feedback is replayed, in-flight refits publish, then the trainer,
    drift evidence, per-backend A/B error windows, lifetime error
    totals, any challenger (with its shadow fraction and evidence), and
    raced buffer leftovers are collected.  After this returns the key no
    longer exists on ``worker``.
    """
    worker.flush(key, blocking=True)
    worker.service.drain()
    drift_errors = worker.service.drift_errors(key)
    backend_windows = {
        backend: tuple(window)
        for (model, backend), window
        in worker.stats.backend_error_windows().items()
        if model == str(key)
    }
    lifetime_totals = {
        (model, backend): totals
        for (model, backend), totals
        in worker.stats.lifetime_error_totals().items()
        if model == str(key)
    }
    challenger = None
    challenger_errors: tuple[float, ...] = ()
    shadow_frac = 1.0
    if worker.has_challenger(key):
        challenger_errors = worker.service.challenger_drift_errors(key)
        shadow_frac = worker.service.challenger_shadow_frac(key)
        challenger = encode_backend(worker.unregister_challenger(key))
    trainer = encode_backend(worker.unregister_model(key))
    leftovers = tuple(worker.buffer.discard(key))
    return {
        "key": key,
        "trainer": trainer,
        "drift_errors": tuple(drift_errors),
        "backend_windows": backend_windows,
        "lifetime_totals": lifetime_totals,
        "challenger": challenger,
        "challenger_errors": challenger_errors,
        "shadow_frac": shadow_frac,
        "leftovers": leftovers,
    }


def install_bundle(worker: ShardWorker, bundle: dict[str, Any]) -> ModelKey:
    """Install a :func:`migration_bundle` on its destination worker.

    ``refit_backlog=False`` republishes the exact model the source was
    serving; unabsorbed feedback stays pending toward the destination's
    refit policy — snapshot parity across the hand-off is exact.
    """
    key = bundle["key"]
    trainer = decode_backend(bundle["trainer"])
    worker.register_model(
        key,
        trainer,
        refit_backlog=False,
        initial_errors=bundle["drift_errors"],
    )
    if bundle["challenger"] is not None:
        worker.register_challenger(
            key,
            decode_backend(bundle["challenger"]),
            shadow_frac=bundle["shadow_frac"],
            refit_backlog=False,
            initial_errors=bundle["challenger_errors"],
        )
    for backend, window in bundle["backend_windows"].items():
        worker.stats.record_backend_errors(key, backend, window)
    if bundle["lifetime_totals"]:
        worker.stats.absorb_lifetime_errors(bundle["lifetime_totals"])
    for observation in bundle["leftovers"]:
        worker.buffer.append(key, observation)
    if bundle["leftovers"]:
        worker.flush(key, blocking=True)
    return key


class WorkerServer:
    """Serve one ShardWorker's full surface over the wire protocol."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_id: str = "worker",
        policy: RefitPolicy | None = None,
        cache_capacity: int = 4096,
        per_key_cache_budget: int | None = None,
        scheduler_mode: str = "background",
        buffer_capacity: int | None = None,
        dispatch_threads: int = 8,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 64,
        checkpoint_interval: float | None = None,
        checkpoint_keep: int = 3,
    ) -> None:
        """``checkpoint_dir``, when set, makes the worker durable: every
        key is checkpointed after ``checkpoint_every`` writes (or when
        ``checkpoint_interval`` seconds have passed since its last
        checkpoint, whichever fires first), keeping the newest
        ``checkpoint_keep`` versions — and any checkpoints already in
        the directory are restored before the listener accepts traffic,
        so a respawned worker boots serving what it last saved."""
        if checkpoint_every < 1:
            raise NetError("checkpoint_every must be at least 1")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise NetError("checkpoint_interval must be positive")
        self._worker = ShardWorker(
            shard_id,
            policy=policy,
            cache_capacity=cache_capacity,
            per_key_cache_budget=per_key_cache_budget,
            scheduler_mode=scheduler_mode,
            buffer_capacity=buffer_capacity,
        )
        self._checkpoints: CheckpointStore | None = None
        self._checkpoint_every = checkpoint_every
        self._checkpoint_interval = checkpoint_interval
        self._ckpt_lock = threading.Lock()
        self._writes_since: dict[ModelKey, int] = {}
        self._last_checkpoint: dict[ModelKey, float] = {}
        if checkpoint_dir is not None:
            self._checkpoints = CheckpointStore(
                checkpoint_dir, keep=checkpoint_keep
            )
            self._restore_from_checkpoints()
        self._listener = socket.create_server((host, port))
        self._host, self._port = self._listener.getsockname()[:2]
        self._pool = ThreadPoolExecutor(
            max_workers=dispatch_threads,
            thread_name_prefix=f"repro-net-{shard_id}",
        )
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound interface."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved when constructed with port 0)."""
        return self._port

    @property
    def shard_id(self) -> str:
        """This worker's stable identity on the gateway's ring."""
        return self._worker.shard_id

    @property
    def worker(self) -> ShardWorker:
        """The hosted shard (in-thread tests, metrics, debugging)."""
        return self._worker

    @property
    def checkpoints(self) -> CheckpointStore | None:
        """The checkpoint store, when durability is configured."""
        return self._checkpoints

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _restore_from_checkpoints(self) -> int:
        """Reinstall every checkpointed key at boot; returns the count."""
        assert self._checkpoints is not None
        restored = 0
        now = time.monotonic()
        existing = set(self._worker.model_keys())
        for bundle in self._checkpoints.latest_bundles():
            key = bundle["key"]
            if key in existing:
                continue
            restore_bundle(self._worker, bundle)
            self._worker.stats.record_checkpoint_restore()
            with self._ckpt_lock:
                self._last_checkpoint[key] = now
            restored += 1
        return restored

    def checkpoint_key(self, key: ModelKey) -> bool:
        """Checkpoint one key now (no-op without a store or the key).

        The bundle capture flushes the key's buffered feedback and
        encodes the trainer under its lock, so concurrent observes on
        the same key block briefly — the price of a consistent bundle.
        """
        if self._checkpoints is None:
            return False
        try:
            bundle = checkpoint_bundle(self._worker, key)
        except ServingError:
            return False  # the key was withdrawn mid-flight
        self._checkpoints.save(bundle)
        with self._ckpt_lock:
            self._writes_since[key] = 0
            self._last_checkpoint[key] = time.monotonic()
        self._worker.stats.record_checkpoint()
        return True

    def checkpoint_all(self, dirty_only: bool = False) -> int:
        """Checkpoint every key (or only written-since-last ones)."""
        if self._checkpoints is None:
            return 0
        written = 0
        for key in self._worker.model_keys():
            if dirty_only:
                with self._ckpt_lock:
                    if not self._writes_since.get(key):
                        continue
            if self.checkpoint_key(key):
                written += 1
        return written

    def _note_write(self, key: ModelKey) -> None:
        """Count one write toward the key's checkpoint policy."""
        if self._checkpoints is None:
            return
        due = False
        now = time.monotonic()
        with self._ckpt_lock:
            count = self._writes_since.get(key, 0) + 1
            self._writes_since[key] = count
            if count >= self._checkpoint_every:
                due = True
            elif self._checkpoint_interval is not None:
                last = self._last_checkpoint.setdefault(key, now)
                due = now - last >= self._checkpoint_interval
        if due:
            self.checkpoint_key(key)

    def _discard_checkpoints(self, key: ModelKey) -> None:
        """Forget a key's durable state once it leaves this worker."""
        if self._checkpoints is None:
            return
        self._checkpoints.discard(key)
        with self._ckpt_lock:
            self._writes_since.pop(key, None)
            self._last_checkpoint.pop(key, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin accepting connections on a daemon thread."""
        if self._accept_thread is not None:
            raise NetError("worker server already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-net-accept-{self.shard_id}",
            daemon=True,
        )
        self._accept_thread.start()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until :meth:`close` completes (or ``timeout`` elapses)."""
        return self._stopped.wait(timeout)

    def close(self) -> None:
        """Stop accepting, sever connections, shut the shard down."""
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        # shutdown() before close(): a thread blocked in accept() holds
        # the listening socket's file description open, so close() alone
        # would leave the port in LISTEN state until a connection
        # arrived.  shutdown() wakes the accept immediately.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            conns = tuple(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._pool.shutdown(wait=True)
        if self._checkpoints is not None:
            # Best-effort durability on the way down: a graceful stop
            # loses nothing, so only crashes lean on the write journal.
            try:
                self.checkpoint_all(dirty_only=True)
            except Exception:
                pass
        self._worker.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self._stopped.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _address = self._listener.accept()
            except OSError:
                return  # listener closed by close()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                if self._stopping.is_set():
                    conn.close()
                    return
                self._conns.add(conn)
            threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name=f"repro-net-conn-{self.shard_id}",
                daemon=True,
            ).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        try:
            while not self._stopping.is_set():
                try:
                    message = recv_message(conn)
                except (EOFError, NetError, OSError):
                    return
                if not isinstance(message, Request):
                    return  # protocol violation; drop the connection
                try:
                    self._pool.submit(
                        self._handle, conn, write_lock, message
                    )
                except RuntimeError:
                    return  # pool shut down mid-accept
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _handle(
        self,
        conn: socket.socket,
        write_lock: threading.Lock,
        request: Request,
    ) -> None:
        try:
            value = self._dispatch(request.method, request.kwargs)
            response = Response(request.request_id, ok=True, value=value)
        except Exception as error:
            response = error_response(request.request_id, error)
        with write_lock:
            try:
                send_message(conn, response)
            except (OSError, NetError):
                return  # peer went away; nothing to deliver the reply to
        if request.method == "shutdown" and response.ok:
            # close() joins the dispatch pool, so it must not run on a
            # pool thread; the response is already flushed above.
            threading.Thread(target=self.close, daemon=True).start()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, method: str, kwargs: dict[str, Any]) -> Any:
        handler = getattr(self, f"_do_{method}", None)
        if handler is None:
            raise NetError(f"unknown wire method {method!r}")
        return handler(**kwargs)

    def _do_ping(self, delay: float = 0.0) -> str:
        if delay:
            time.sleep(delay)
        return "pong"

    def _do_identify(self) -> dict[str, Any]:
        return {"shard_id": self.shard_id, "host": self._host, "port": self._port}

    def _do_register_model(
        self,
        table: str | ModelKey,
        backend: bytes,
        columns: Sequence[str] = (),
        refit_backlog: bool = True,
        initial_errors: Sequence[float] = (),
    ) -> ModelKey:
        key = self._worker.register_model(
            table,
            decode_backend(backend),
            columns=columns,
            refit_backlog=refit_backlog,
            initial_errors=initial_errors,
        )
        if self._checkpoints is not None:
            self.checkpoint_key(key)  # durable baseline from the start
        return key

    def _do_unregister_model(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bytes:
        key = normalize_key(table, columns)
        payload = encode_backend(self._worker.unregister_model(key))
        self._discard_checkpoints(key)
        return payload

    def _do_register_challenger(
        self,
        table: str | ModelKey,
        backend: bytes,
        columns: Sequence[str] = (),
        shadow_frac: float = 1.0,
        refit_backlog: bool = True,
        initial_errors: Sequence[float] = (),
    ) -> ModelKey:
        return self._worker.register_challenger(
            table,
            decode_backend(backend),
            columns=columns,
            shadow_frac=shadow_frac,
            refit_backlog=refit_backlog,
            initial_errors=initial_errors,
        )

    def _do_has_challenger(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bool:
        return self._worker.has_challenger(normalize_key(table, columns))

    def _do_challenger_snapshot_for(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bytes:
        key = normalize_key(table, columns)
        return encode_snapshot(self._worker.challenger_snapshot_for(key))

    def _do_promote(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bytes:
        key = normalize_key(table, columns)
        payload = encode_backend(self._worker.promote(key))
        if self._checkpoints is not None:
            self.checkpoint_key(key)  # the served champion changed
        return payload

    def _do_model_keys(self) -> tuple[ModelKey, ...]:
        return tuple(self._worker.model_keys())

    def _do_snapshot_for(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bytes:
        key = normalize_key(table, columns)
        return encode_snapshot(self._worker.snapshot_for(key))

    def _do_feedback_count(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> int:
        return self._worker.feedback_count(normalize_key(table, columns))

    def _do_estimate(
        self,
        table: str | ModelKey,
        predicate: object,
        columns: Sequence[str] = (),
    ) -> float:
        return self._worker.estimate(normalize_key(table, columns), predicate)

    def _do_estimate_batch(
        self,
        table: str | ModelKey,
        predicates: Sequence[object],
        columns: Sequence[str] = (),
    ):
        key = normalize_key(table, columns)
        return self._worker.estimate_batch(key, predicates)

    def _do_observe(
        self,
        table: str | ModelKey,
        predicate: object,
        selectivity: float,
        columns: Sequence[str] = (),
    ) -> bool:
        key = normalize_key(table, columns)
        # The return value reports whether a refit was triggered; the
        # observation itself is buffered either way, so it always counts
        # toward the checkpoint policy.
        refit_triggered = self._worker.observe(key, predicate, selectivity)
        self._note_write(key)
        return refit_triggered

    def _do_refit_now(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bytes:
        key = normalize_key(table, columns)
        return encode_snapshot(self._worker.refit_now(key))

    def _do_flush(self, blocking: bool = True) -> int:
        return self._worker.flush(blocking=blocking)

    def _do_drain(self, timeout: float | None = None) -> None:
        self._worker.drain(timeout)

    def _do_stats(self) -> dict[str, Any]:
        stats = self._worker.stats
        return {
            "shard_id": self.shard_id,
            "counters": dict(stats.counters()),
            "latencies": tuple(stats.latency_values()),
            "buffer": dict(self._worker.buffer.counters()),
            "backend_error_windows": {
                scope: tuple(window)
                for scope, window in stats.backend_error_windows().items()
            },
            "model_keys": len(self._worker.model_keys()),
        }

    def _do_migrate_out(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> dict[str, Any]:
        key = normalize_key(table, columns)
        bundle = migration_bundle(self._worker, key)
        self._discard_checkpoints(key)
        return bundle

    def _do_migrate_in(self, bundle: dict[str, Any]) -> ModelKey:
        key = install_bundle(self._worker, bundle)
        if self._checkpoints is not None:
            self.checkpoint_key(key)
        return key

    def _do_checkpoint(
        self,
        table: str | ModelKey | None = None,
        columns: Sequence[str] = (),
    ) -> int:
        """Force a checkpoint of one key (or all) now; returns the count."""
        if self._checkpoints is None:
            return 0
        if table is not None:
            return int(self.checkpoint_key(normalize_key(table, columns)))
        return self.checkpoint_all()

    def _do_shutdown(self) -> str:
        return "stopping"  # _handle closes the server after the reply

    def __repr__(self) -> str:
        return (
            f"WorkerServer(shard_id={self.shard_id!r}, "
            f"address=({self._host!r}, {self._port}), "
            f"closed={self._closed})"
        )


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    shard_id: str = "worker",
    ready: Any | None = None,
    run_seconds: float | None = None,
    **config: Any,
) -> None:
    """Run a worker server until shutdown (child-process / CLI entry point).

    ``ready`` (a pipe connection), if given, receives the bound
    ``(host, port)`` once the server accepts traffic.  ``run_seconds``
    bounds the lifetime for tests and smoke runs; by default the call
    blocks until a ``shutdown`` request (or :meth:`WorkerServer.close`)
    stops the server.
    """
    server = WorkerServer(host=host, port=port, shard_id=shard_id, **config)
    server.start()
    if ready is not None:
        ready.send((server.host, server.port))
        ready.close()
    try:
        server.wait(run_seconds)
    finally:
        server.close()


class WorkerProcess:
    """A worker server in a child interpreter (the GIL boundary).

    Uses the spawn start method: the child imports fresh, so no forked
    trainer locks, scheduler threads, or socket state come along.  The
    constructor blocks until the child reports its bound address.
    """

    def __init__(
        self,
        shard_id: str = "worker",
        host: str = "127.0.0.1",
        start_timeout: float = 60.0,
        **config: Any,
    ) -> None:
        context = multiprocessing.get_context("spawn")
        parent, child = context.Pipe()
        self._shard_id = shard_id
        self._process = context.Process(
            target=run_worker,
            kwargs={
                "host": host,
                "port": 0,
                "shard_id": shard_id,
                "ready": child,
                **config,
            },
            name=f"repro-net-worker-{shard_id}",
            daemon=True,
        )
        self._process.start()
        child.close()
        try:
            if not parent.poll(start_timeout):
                raise WorkerUnavailableError(
                    f"worker {shard_id!r} did not report an address within "
                    f"{start_timeout}s"
                )
            self._host, self._port = parent.recv()
        except (EOFError, OSError) as error:
            self.terminate()
            raise WorkerUnavailableError(
                f"worker {shard_id!r} died before reporting an address"
            ) from error
        except WorkerUnavailableError:
            self.terminate()
            raise
        finally:
            parent.close()

    @property
    def shard_id(self) -> str:
        """This worker's identity on the ring."""
        return self._shard_id

    @property
    def address(self) -> tuple[str, int]:
        """Where the child's server is listening."""
        return self._host, self._port

    @property
    def pid(self) -> int | None:
        """The child's process id."""
        return self._process.pid

    @property
    def alive(self) -> bool:
        """True while the child process is running."""
        return self._process.is_alive()

    def request_shutdown(self, timeout: float = 30.0) -> None:
        """Graceful stop: drain buffered feedback and refits, then exit.

        Speaks the protocol directly over a short-lived connection so the
        helper works without a gateway in the picture.
        """
        try:
            with socket.create_connection(
                (self._host, self._port), timeout=timeout
            ) as sock:
                sock.settimeout(timeout)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                for request_id, method, kwargs in (
                    (0, "drain", {"timeout": timeout}),
                    (1, "shutdown", {}),
                ):
                    send_message(sock, Request(request_id, method, kwargs))
                    recv_message(sock)
        except (OSError, EOFError, NetError) as error:
            raise WorkerUnavailableError(
                f"worker {self._shard_id!r} unreachable for shutdown: {error}"
            ) from error
        self._process.join(timeout=timeout)

    @property
    def exitcode(self) -> int | None:
        """The child's exit code (None while it is still running)."""
        return self._process.exitcode

    def kill(self) -> int | None:
        """Hard-kill the child (fault injection); returns the exit code."""
        self._process.kill()
        self._process.join(timeout=10.0)
        return self._process.exitcode

    def terminate(self, timeout: float = 5.0) -> int | None:
        """SIGTERM the child and reap it, escalating to SIGKILL.

        A child that ignores SIGTERM for ``timeout`` seconds (wedged in
        native code, stopped, or shutting down forever) is killed
        outright — a dead-but-unreaped worker must not linger as a
        zombie or hold its port.  Returns the reaped exit code.
        """
        self._process.terminate()
        self._process.join(timeout=timeout)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=10.0)
        return self._process.exitcode

    def join(self, timeout: float | None = None) -> None:
        """Wait for the child to exit."""
        self._process.join(timeout)

    def __repr__(self) -> str:
        return (
            f"WorkerProcess(shard_id={self._shard_id!r}, "
            f"address=({self._host!r}, {self._port}), alive={self.alive})"
        )
