"""The async serving gateway: one front door over N worker processes.

:class:`SelectivityGateway` is the asyncio core.  It keeps one pipelined
connection per worker (:class:`_WorkerLink`), routes model keys over the
fleet with the same BLAKE2b :class:`~repro.cluster.router.ShardRouter`
the in-process cluster uses, fans :meth:`estimate_batch_mixed` out
across worker connections with input-order reassembly, and migrates keys
across the process boundary on membership changes via the worker-side
``migrate_out`` / ``migrate_in`` bundle (the cluster's exact-snapshot
hand-off, split at the wire).

Robustness model:

* every worker call carries a per-request timeout; expiry surfaces
  :class:`~repro.exceptions.RemoteTimeoutError` (never a silent retry —
  the caller decides whether the operation is safe to repeat);
* connection failures on **idempotent reads** are retried with bounded
  exponential backoff, reconnecting first — a worker killed mid-batch
  costs a retry, not an error;
* connection failures on **writes** (``observe``, registration,
  migration) are never auto-retried: a request that died in flight may
  or may not have been applied, and retrying could double-count
  feedback.  They surface :class:`WorkerUnavailableError` instead;
* a ``ServingError`` reply gets one re-route retry for any method — the
  key may have migrated, and an error reply proves the request was
  *not* applied, so the retry cannot duplicate anything;
* links reconnect lazily on the next call (and eagerly from the
  optional health-check loop), so a worker respawned at the same
  address resumes service without gateway restarts;
* each worker link sits behind a :class:`~repro.net.breaker.CircuitBreaker`
  — after N consecutive failures the gateway stops dialling the corpse
  and fails fast until a half-open probe (or a health-loop ping)
  succeeds;
* reads against an unreachable worker degrade instead of erroring: the
  gateway answers from its last-known decoded snapshot for the key, or
  from a configured prior when it never saw one (``degraded_estimates``
  counts every such answer — degraded values are *stale*, not wrong:
  snapshots are immutable and only drift by missing recent refits);
* writes against an unreachable worker can be buffered (bounded,
  opt-in via ``write_buffer_capacity``) and replayed on recovery; a
  per-key journal of acknowledged writes lets
  :meth:`SelectivityGateway.resync_worker` re-deliver the feedback a
  checkpoint-restored worker lost, so no acknowledged observation
  silently disappears (irrecoverable gaps are counted in
  ``lost_writes``, never dropped quietly).

:class:`GatewayServer` hosts the gateway on its own event-loop thread
and speaks the same wire protocol to downstream clients, dispatching one
asyncio task per request (responses may return out of request order; the
``request_id`` echo keeps clients straight).
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time
from collections import deque
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import (
    ClusterError,
    NetError,
    RemoteTimeoutError,
    ServingError,
    WorkerUnavailableError,
)
from repro.serving.registry import ModelKey, normalize_key
from repro.serving.snapshot import ModelSnapshot
from repro.cluster.router import ShardRouter
from repro.net.breaker import CircuitBreaker, full_jitter
from repro.net.protocol import (
    Request,
    Response,
    decode_snapshot,
    error_response,
    raise_remote_error,
    read_message,
    write_message,
)
from repro.net.stats import GatewayStats, merge_worker_stats

__all__ = ["SelectivityGateway", "GatewayServer"]

#: Wire methods safe to retry after a connection failure: they either
#: mutate nothing or are served from an immutable snapshot, so replaying
#: one cannot double-apply anything.
IDEMPOTENT_READS = frozenset(
    {
        "estimate",
        "estimate_batch",
        "snapshot_for",
        "feedback_count",
        "model_keys",
        "has_challenger",
        "challenger_snapshot_for",
        "stats",
        "ping",
        "identify",
    }
)


class _WorkerLink:
    """One pipelined protocol connection to a worker server."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        stats: GatewayStats,
        connect_timeout: float = 10.0,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self._stats = stats
        self._connect_timeout = connect_timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._connect_lock = asyncio.Lock()
        self._was_connected = False
        self._closed = False

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self) -> None:
        """(Re)establish the connection; no-op when already connected."""
        async with self._connect_lock:
            if self._closed:
                raise WorkerUnavailableError(
                    f"link to worker {self.name!r} is closed"
                )
            if self._writer is not None:
                return
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self._connect_timeout,
                )
            except (OSError, asyncio.TimeoutError) as error:
                raise WorkerUnavailableError(
                    f"cannot connect to worker {self.name!r} at "
                    f"{self.host}:{self.port}: {error}"
                ) from error
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._reader, self._writer = reader, writer
            self._reader_task = asyncio.create_task(self._read_loop())
            if self._was_connected:
                self._stats.record_reconnect()
            self._was_connected = True

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                message = await read_message(self._reader)
                if not isinstance(message, Response):
                    raise NetError(
                        f"worker {self.name!r} sent a non-response frame"
                    )
                future = self._pending.pop(message.request_id, None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (EOFError, NetError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._drop_connection()

    def _drop_connection(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
        pending, self._pending = dict(self._pending), {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    WorkerUnavailableError(
                        f"connection to worker {self.name!r} was lost with "
                        "the request in flight"
                    )
                )

    async def call(
        self,
        method: str,
        kwargs: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> Any:
        """One request/response round trip (pipelined, out-of-order safe)."""
        if self._writer is None:
            await self.connect()
        writer = self._writer
        if writer is None:
            raise WorkerUnavailableError(
                f"link to worker {self.name!r} dropped during connect"
            )
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        started = time.monotonic()
        try:
            async with self._write_lock:
                await write_message(
                    writer, Request(request_id, method, dict(kwargs or {}))
                )
        except (OSError, ConnectionError) as error:
            self._pending.pop(request_id, None)
            self._drop_connection()
            raise WorkerUnavailableError(
                f"lost connection to worker {self.name!r} while sending "
                f"{method!r}: {error}"
            ) from error
        try:
            response = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            self._stats.record_timeout()
            raise RemoteTimeoutError(
                f"worker {self.name!r} did not answer {method!r} within "
                f"{timeout}s"
            ) from None
        self._stats.record_worker_call(self.name, time.monotonic() - started)
        raise_remote_error(response)
        return response.value

    async def close(self) -> None:
        """Tear the link down and fail anything still in flight."""
        self._closed = True
        task = self._reader_task
        self._drop_connection()
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            self._reader_task = None


class _WriteJournal:
    """Per-key memory of acknowledged feedback, for resync after a crash.

    ``base`` is the key's feedback count when the gateway registered it;
    ``delivered`` counts observes a worker confirmed since; ``recent``
    keeps the newest delivered writes (bounded) so a checkpoint-restored
    worker can be topped back up; ``pending`` holds writes acknowledged
    into the outage buffer but not yet delivered anywhere.
    """

    __slots__ = ("base", "delivered", "recent", "pending")

    def __init__(self, base: int, journal_capacity: int) -> None:
        self.base = base
        self.delivered = 0
        self.recent: deque[tuple[object, float]] = deque(
            maxlen=max(1, journal_capacity)
        )
        self.pending: deque[tuple[object, float]] = deque()


class SelectivityGateway:
    """Route the serving surface over a fleet of worker processes."""

    def __init__(
        self,
        workers: dict[str, tuple[str, int]],
        replicas: int = 64,
        request_timeout: float | None = 30.0,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        health_interval: float | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
        degraded_reads: bool = True,
        degraded_prior: float | None = 0.5,
        write_buffer_capacity: int = 0,
        write_journal_capacity: int = 1024,
        backoff_rng: random.Random | None = None,
    ) -> None:
        """``workers`` maps worker name → ``(host, port)``.

        ``request_timeout`` bounds every routine worker round trip
        (``None`` disables); migrations and drains manage their own
        budgets.  ``max_retries`` applies to idempotent reads only;
        retry delays are full-jittered so concurrent retriers don't
        stampede a recovering worker in lockstep.  ``health_interval``
        (seconds), when set, runs a background ping loop that eagerly
        reconnects failed links, feeds the circuit breakers, and replays
        buffered writes once their owner answers again.

        Degradation knobs: each worker gets a circuit breaker that opens
        after ``breaker_threshold`` consecutive failures and half-open
        probes after ``breaker_cooldown`` seconds.  With
        ``degraded_reads`` on, reads that exhaust their retries answer
        from the gateway's last-known snapshot for the key (or
        ``degraded_prior`` when no snapshot was ever seen; ``None``
        re-raises instead).  ``write_buffer_capacity`` > 0 additionally
        acknowledges observes into a bounded per-key buffer while the
        owner is down — buffered writes are replayed on recovery, which
        trades the plain path's "an ack means the worker has it" for
        "an ack means the fleet will eventually have it".
        ``write_journal_capacity`` bounds the per-key journal of
        delivered writes that :meth:`resync_worker` re-delivers after a
        checkpoint restore; size it at least as large as the workers'
        ``checkpoint_every`` or restores may lose acknowledged feedback
        (counted in ``lost_writes``, never silent).
        """
        if not workers:
            raise ClusterError("a gateway needs at least one worker")
        if max_retries < 0:
            raise ClusterError("max_retries must be non-negative")
        if breaker_threshold < 1:
            raise ClusterError("breaker_threshold must be at least 1")
        if breaker_cooldown <= 0:
            raise ClusterError("breaker_cooldown must be positive")
        if write_buffer_capacity < 0 or write_journal_capacity < 0:
            raise ClusterError("write capacities must be non-negative")
        if degraded_prior is not None and not 0.0 <= degraded_prior <= 1.0:
            raise ClusterError("degraded_prior must be in [0, 1] or None")
        self._stats = GatewayStats()
        self._links = {
            name: _WorkerLink(name, host, port, self._stats)
            for name, (host, port) in workers.items()
        }
        self._router = ShardRouter(list(self._links), replicas=replicas)
        self._replicas = replicas
        self._request_timeout = request_timeout
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._health_interval = health_interval
        self._health_task: asyncio.Task | None = None
        self._membership = asyncio.Lock()
        self._closed = False
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._degraded_reads = degraded_reads
        self._degraded_prior = degraded_prior
        self._write_buffer_capacity = write_buffer_capacity
        self._write_journal_capacity = write_journal_capacity
        self._rng = backoff_rng if backoff_rng is not None else random.Random()
        self._breakers = {name: self._new_breaker() for name in workers}
        # Both caches are touched only from the gateway's event loop, so
        # they need no locks; mutations never span an await.
        self._snapshots: dict[ModelKey, ModelSnapshot] = {}
        self._journals: dict[ModelKey, _WriteJournal] = {}

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self._breaker_threshold,
            cooldown_seconds=self._breaker_cooldown,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self) -> GatewayStats:
        """Gateway-side counters and latency windows."""
        return self._stats

    @property
    def router(self) -> ShardRouter:
        """The hash ring (mutate only through add/remove_worker)."""
        return self._router

    @property
    def breakers(self) -> dict[str, CircuitBreaker]:
        """Per-worker circuit breakers, by worker name (read-only view)."""
        return dict(self._breakers)

    async def start(self) -> None:
        """Connect every link; start the health loop if configured."""
        await asyncio.gather(
            *(link.connect() for link in self._links.values())
        )
        if self._health_interval is not None and self._health_task is None:
            self._health_task = asyncio.create_task(self._health_loop())

    async def close(self) -> None:
        """Stop the health loop and close every worker link."""
        self._closed = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        await asyncio.gather(
            *(link.close() for link in self._links.values())
        )

    async def ping(self) -> str:
        """Gateway liveness (answered without touching any worker)."""
        return "pong"

    async def worker_names(self) -> tuple[str, ...]:
        """All worker names on the ring, sorted."""
        return self._router.shards

    async def set_worker_address(
        self, name: str, host: str, port: int
    ) -> None:
        """Point a worker's link at a new address (respawn/failover).

        The old connection is severed; the next call reconnects to the
        new address.  The ring position is unchanged — the worker keeps
        its identity and its keys.
        """
        async with self._membership:
            link = self._links.get(name)
            if link is None:
                raise ClusterError(f"unknown worker {name!r}")
            await link.close()
            self._links[name] = _WorkerLink(name, host, port, self._stats)
            # A repoint is an operator/supervisor asserting the worker is
            # back: give the fresh address a clean slate to prove it.
            breaker = self._breakers.get(name)
            if breaker is not None:
                breaker.reset()

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self._health_interval)
            for name, link in list(self._links.items()):
                breaker = self._breakers.get(name)
                try:
                    await link.call("ping", timeout=self._request_timeout)
                except (WorkerUnavailableError, NetError):
                    # The next call (or next health tick) reconnects; the
                    # link already failed its in-flight futures.
                    self._stats.record_health_failure()
                    if breaker is not None and breaker.record_failure():
                        self._stats.record_breaker_open()
                    continue
                if breaker is not None:
                    breaker.record_success()
                await self._replay_pending_to(name)

    # ------------------------------------------------------------------
    # Routing and retry machinery
    # ------------------------------------------------------------------
    def _link_for(self, key: ModelKey) -> _WorkerLink:
        return self._links[self._router.route(key)]

    async def _call_link(
        self,
        link: _WorkerLink,
        method: str,
        kwargs: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> Any:
        """One bounded worker call, with reconnect-and-retry on reads.

        Every attempt consults the worker's circuit breaker: an open
        breaker fails fast (no dial, no timeout wait), which is what
        lets callers fall through to the degraded path at memory speed
        while the owner is down.  Retry sleeps are full-jittered.
        """
        wire_timeout = self._request_timeout if timeout is None else timeout
        retries = self._max_retries if method in IDEMPOTENT_READS else 0
        breaker = self._breakers.get(link.name)
        last_error: Exception | None = None
        for attempt in range(retries + 1):
            if breaker is not None and not breaker.allow():
                last_error = WorkerUnavailableError(
                    f"circuit breaker open for worker {link.name!r}"
                )
            else:
                try:
                    value = await link.call(
                        method, kwargs, timeout=wire_timeout
                    )
                except RemoteTimeoutError:
                    if breaker is not None and breaker.record_failure():
                        self._stats.record_breaker_open()
                    raise  # the worker may still apply it; never replay
                except (WorkerUnavailableError, NetError) as error:
                    if breaker is not None and breaker.record_failure():
                        self._stats.record_breaker_open()
                    last_error = error
                else:
                    if breaker is not None:
                        breaker.record_success()
                    return value
            if attempt < retries:
                self._stats.record_retry()
                await asyncio.sleep(
                    full_jitter(self._retry_backoff, attempt, self._rng)
                )
        assert last_error is not None
        raise last_error

    async def _call_routed(
        self, key: ModelKey, method: str, kwargs: dict[str, Any]
    ) -> Any:
        """Route and call, retrying once if the key migrated mid-call."""
        for attempt in (0, 1):
            link = self._link_for(key)
            try:
                return await self._call_link(link, method, kwargs)
            except ServingError:
                # An error reply proves the request was not applied, so
                # one re-route retry is duplicate-safe for any method.
                if attempt:
                    raise
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------
    async def register_model(
        self,
        table: str | ModelKey,
        backend: bytes,
        columns: Sequence[str] = (),
    ) -> ModelKey:
        """Install an :func:`~repro.net.protocol.encode_backend` payload
        on the worker its key routes to."""
        key = normalize_key(table, columns)
        result = await self._call_routed(
            key, "register_model", {"table": key, "backend": backend}
        )
        # Best-effort: seed the degraded-read cache and the write
        # journal's base count.  Failure here leaves the registration
        # valid — the key just has no degraded answer / resync anchor
        # until a later snapshot_for or resync refreshes it.
        try:
            await self._refresh_snapshot(key)
            if self._write_journal_capacity or self._write_buffer_capacity:
                base = await self._call_routed(
                    key, "feedback_count", {"table": key}
                )
                self._journals[key] = _WriteJournal(
                    int(base), self._write_journal_capacity
                )
        except (WorkerUnavailableError, NetError, ServingError):
            pass
        return result

    async def unregister_model(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bytes:
        """Withdraw a key's backend; returns the encoded trainer."""
        key = normalize_key(table, columns)
        payload = await self._call_routed(
            key, "unregister_model", {"table": key}
        )
        self._snapshots.pop(key, None)
        self._journals.pop(key, None)
        return payload

    async def _refresh_snapshot(self, key: ModelKey) -> None:
        """Re-fetch and decode a key's snapshot for the degraded cache."""
        payload = await self._call_routed(key, "snapshot_for", {"table": key})
        self._snapshots[key] = decode_snapshot(payload)

    async def model_keys(self) -> tuple[ModelKey, ...]:
        """Every key served anywhere in the fleet, sorted."""
        names = self._router.shards
        per_worker = await asyncio.gather(
            *(
                self._call_link(self._links[name], "model_keys")
                for name in names
            )
        )
        keys: list[ModelKey] = []
        for worker_keys in per_worker:
            keys.extend(worker_keys)
        return tuple(sorted(keys))

    async def snapshot_for(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bytes:
        """The owning worker's current snapshot, wire-encoded."""
        key = normalize_key(table, columns)
        payload = await self._call_routed(key, "snapshot_for", {"table": key})
        try:
            self._snapshots[key] = decode_snapshot(payload)
        except Exception:
            pass  # an undecodable payload must not fail the passthrough
        return payload

    async def feedback_count(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> int:
        """Observations accepted for a key (absorbed plus buffered)."""
        key = normalize_key(table, columns)
        return await self._call_routed(key, "feedback_count", {"table": key})

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _degraded_answer(
        self,
        key: ModelKey,
        predicates: Sequence[object],
        error: Exception,
    ) -> np.ndarray:
        """Answer a failed read from the last-known snapshot or prior.

        Degraded values are *stale*, not fabricated: the cached snapshot
        is the immutable model the owner itself was serving the last
        time the gateway saw it — it only misses refits since.  The
        prior fallback (when the gateway never saw a snapshot for the
        key) is the uniform-ignorance answer and is the reason
        ``degraded_estimates`` must be watched, not just availability.
        """
        if not self._degraded_reads:
            raise error
        snapshot = self._snapshots.get(key)
        if snapshot is not None:
            values = np.asarray(
                snapshot.estimate_many(list(predicates)), dtype=float
            )
        elif self._degraded_prior is not None:
            values = np.full(len(predicates), self._degraded_prior)
        else:
            raise error
        self._stats.record_degraded(len(predicates))
        return values

    async def estimate(
        self,
        table: str | ModelKey,
        predicate: object,
        columns: Sequence[str] = (),
    ) -> float:
        """Scalar estimate from the owning worker's current snapshot.

        Falls back to the degraded path (last-known snapshot, then the
        configured prior) when the owner is unreachable.
        """
        key = normalize_key(table, columns)
        try:
            return await self._call_routed(
                key, "estimate", {"table": key, "predicate": predicate}
            )
        except (WorkerUnavailableError, NetError) as error:
            return float(self._degraded_answer(key, [predicate], error)[0])

    async def estimate_batch(
        self,
        table: str | ModelKey,
        predicates: Sequence[object],
        columns: Sequence[str] = (),
    ) -> np.ndarray:
        """Single-key burst, routed whole to one worker's vectorised path."""
        key = normalize_key(table, columns)
        predicates = list(predicates)
        try:
            return await self._call_routed(
                key, "estimate_batch", {"table": key, "predicates": predicates}
            )
        except (WorkerUnavailableError, NetError) as error:
            return self._degraded_answer(key, predicates, error)

    async def estimate_batch_mixed(
        self, pairs: Sequence[tuple[str | ModelKey, object]]
    ) -> np.ndarray:
        """Mixed-key burst: split by worker, fan out, reassemble in order."""
        pairs = list(pairs)
        results = np.empty(len(pairs))
        if not pairs:
            return results
        groups: dict[ModelKey, tuple[list[int], list[object]]] = {}
        for index, (table, predicate) in enumerate(pairs):
            key = normalize_key(table, ())
            indices, predicates = groups.setdefault(key, ([], []))
            indices.append(index)
            predicates.append(predicate)
        self._stats.record_fanout(
            len({self._router.route(key) for key in groups})
        )

        async def run_group(
            key: ModelKey, indices: list[int], predicates: list[object]
        ) -> None:
            try:
                values = await self._call_routed(
                    key,
                    "estimate_batch",
                    {"table": key, "predicates": predicates},
                )
            except (WorkerUnavailableError, NetError) as error:
                # Degrade only this key's slice; the rest of the burst
                # keeps its live answers.
                values = self._degraded_answer(key, predicates, error)
            results[indices] = values

        await asyncio.gather(
            *(
                run_group(key, indices, predicates)
                for key, (indices, predicates) in groups.items()
            )
        )
        return results

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    async def observe(
        self,
        table: str | ModelKey,
        predicate: object,
        selectivity: float,
        columns: Sequence[str] = (),
    ) -> bool:
        """Record feedback on the owning worker's observation buffer.

        Not auto-retried on connection failure (the request may already
        have been applied); a failure surfaces
        :class:`WorkerUnavailableError` and the caller decides — unless
        ``write_buffer_capacity`` is set, in which case the write is
        acknowledged into a bounded gateway-side buffer and replayed
        once the owner answers again (a full buffer raises as before).
        Timeouts are never buffered: a timed-out write may already have
        been applied, and replaying it could double-count feedback.
        """
        key = normalize_key(table, columns)
        journal = self._journals.get(key)
        if journal is not None and journal.pending:
            # Older buffered writes go first so feedback stays ordered;
            # if the owner is still down, this write queues behind them.
            await self._replay_pending_for_key(key, journal)
            if journal.pending:
                return self._buffer_write(key, journal, predicate, selectivity)
        try:
            result = await self._call_routed(
                key,
                "observe",
                {
                    "table": key,
                    "predicate": predicate,
                    "selectivity": selectivity,
                },
            )
        except RemoteTimeoutError:
            raise
        except (WorkerUnavailableError, NetError):
            if journal is None or self._write_buffer_capacity == 0:
                raise
            return self._buffer_write(key, journal, predicate, selectivity)
        # Any non-raising reply means the worker buffered the feedback
        # (the boolean only reports whether a refit was triggered), so
        # the journal counts every delivered write.
        if journal is not None:
            journal.delivered += 1
            journal.recent.append((predicate, selectivity))
        return result

    def _buffer_write(
        self,
        key: ModelKey,
        journal: _WriteJournal,
        predicate: object,
        selectivity: float,
    ) -> bool:
        if len(journal.pending) >= self._write_buffer_capacity:
            raise WorkerUnavailableError(
                f"write buffer full for key {key} "
                f"({self._write_buffer_capacity} pending) and its owner "
                "is unreachable"
            )
        journal.pending.append((predicate, selectivity))
        self._stats.record_buffered_write()
        return True

    async def _replay_pending_for_key(
        self, key: ModelKey, journal: _WriteJournal
    ) -> int:
        """Deliver a key's buffered writes in order; stop on failure."""
        replayed = 0
        while journal.pending:
            predicate, selectivity = journal.pending.popleft()
            try:
                await self._call_routed(
                    key,
                    "observe",
                    {
                        "table": key,
                        "predicate": predicate,
                        "selectivity": selectivity,
                    },
                )
            except (WorkerUnavailableError, NetError, ServingError):
                # Still down (or the restored worker lost the key and
                # awaits resync) — put the write back and try later.
                journal.pending.appendleft((predicate, selectivity))
                break
            journal.delivered += 1
            journal.recent.append((predicate, selectivity))
            self._stats.record_buffered_replay()
            replayed += 1
        return replayed

    async def _replay_pending_to(self, name: str) -> int:
        """Replay every buffered write owned by worker ``name``."""
        replayed = 0
        for key, journal in list(self._journals.items()):
            if journal.pending and self._router.route(key) == name:
                replayed += await self._replay_pending_for_key(key, journal)
        return replayed

    async def resync_worker(self, name: str) -> dict[str, int]:
        """Reconcile a respawned worker with the gateway's write journal.

        Call after :meth:`set_worker_address` when a worker came back
        from a checkpoint restore.  For every journaled key the worker
        owns: compare its feedback count against ``base + delivered``;
        re-deliver the newest journaled writes to close the gap (the
        feedback acknowledged after the last checkpoint), then replay
        any writes buffered during the outage, then refresh the
        degraded-read snapshot cache.  A gap wider than the journal is
        counted in ``lost_writes`` — size ``write_journal_capacity``
        above the workers' ``checkpoint_every`` to keep it at zero.

        Returns ``{"keys": restored, "replayed": n, "lost": m}``.
        """
        link = self._links.get(name)
        if link is None:
            raise ClusterError(f"unknown worker {name!r}")
        keys = await self._call_link(link, "model_keys")
        restored = 0
        replayed = 0
        lost = 0
        for key in keys:
            if self._router.route(key) != name:
                continue
            journal = self._journals.get(key)
            if journal is not None:
                count = await self._call_routed(
                    key, "feedback_count", {"table": key}
                )
                gap = (journal.base + journal.delivered) - int(count)
                if gap > 0:
                    tail = list(journal.recent)[-gap:]
                    shortfall = gap - len(tail)
                    if shortfall > 0:
                        lost += shortfall
                        self._stats.record_lost_writes(shortfall)
                    for predicate, selectivity in tail:
                        await self._call_routed(
                            key,
                            "observe",
                            {
                                "table": key,
                                "predicate": predicate,
                                "selectivity": selectivity,
                            },
                        )
                        replayed += 1
                        self._stats.record_buffered_replay()
                replayed += await self._replay_pending_for_key(key, journal)
            restored += 1
            try:
                await self._refresh_snapshot(key)
            except (WorkerUnavailableError, NetError, ServingError):
                pass
        if restored:
            self._stats.record_checkpoint_restores(restored)
        return {"keys": restored, "replayed": replayed, "lost": lost}

    async def refit_now(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bytes:
        """Flush the key's backlog and retrain synchronously on its worker.

        The wire timeout is waived — a refit is allowed to take longer
        than a routine read."""
        key = normalize_key(table, columns)
        link = self._link_for(key)
        payload = await link.call("refit_now", {"table": key}, timeout=None)
        try:
            self._snapshots[key] = decode_snapshot(payload)
        except Exception:
            pass
        return payload

    async def flush(self, blocking: bool = True) -> int:
        """Replay every worker's buffered observations; total applied."""
        counts = await asyncio.gather(
            *(
                self._links[name].call(
                    "flush", {"blocking": blocking}, timeout=None
                )
                for name in self._router.shards
            )
        )
        return sum(counts)

    async def drain(self, timeout: float | None = None) -> None:
        """Flush all buffers and wait out all refits, fleet-wide.

        ``timeout`` is a *total* budget: each worker gets whatever
        remains when its turn comes, and an exhausted budget raises
        :class:`ServingError` naming the workers still undrained.  An
        unreachable worker is skipped — it must not burn the budget the
        remaining workers need — and reported in one ServingError at
        the end.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        names = self._router.shards
        unreachable: list[str] = []
        for position, name in enumerate(names):
            remaining: float | None = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServingError(
                        f"drain budget of {timeout}s exhausted with "
                        f"{len(names) - position} worker(s) undrained"
                    )
            breaker = self._breakers.get(name)
            if breaker is not None and not breaker.allow():
                unreachable.append(name)
                continue
            try:
                await self._links[name].call(
                    "drain",
                    {"timeout": remaining},
                    timeout=None if remaining is None else remaining + 5.0,
                )
            except (WorkerUnavailableError, NetError) as error:
                if isinstance(error, RemoteTimeoutError):
                    raise  # the budget itself expired mid-drain
                if breaker is not None and breaker.record_failure():
                    self._stats.record_breaker_open()
                unreachable.append(name)
            else:
                if breaker is not None:
                    breaker.record_success()
        if unreachable:
            raise ServingError(
                "drain skipped unreachable worker(s): "
                + ", ".join(sorted(unreachable))
            )

    # ------------------------------------------------------------------
    # Membership (cross-process migration)
    # ------------------------------------------------------------------
    async def add_worker(self, name: str, host: str, port: int) -> str:
        """Grow the ring by one worker and migrate its keys onto it.

        Only keys whose route changes move (consistent-hash minimal
        set); each crosses the process boundary as one exact-snapshot
        bundle, so the destination serves the same model bytes the
        source did — no retraining.
        """
        async with self._membership:
            if name in self._links:
                raise ClusterError(f"worker {name!r} already on the ring")
            link = _WorkerLink(name, host, port, self._stats)
            await link.connect()
            self._breakers[name] = self._new_breaker()
            placements: dict[ModelKey, str] = {}
            for owner in self._router.shards:
                for key in await self._call_link(
                    self._links[owner], "model_keys"
                ):
                    placements[key] = owner
            self._links[name] = link
            self._router.add(name)
            moved = sorted(
                (key, owner)
                for key, owner in placements.items()
                if self._router.route(key) != owner
            )
            for key, owner in moved:
                await self._migrate(
                    key,
                    self._links[owner],
                    self._links[self._router.route(key)],
                )
            return name

    async def remove_worker(self, name: str, shutdown: bool = False) -> int:
        """Migrate a worker's keys clockwise and retire it from the ring.

        With ``shutdown=True`` the emptied worker is asked to drain and
        exit.  Returns how many keys were migrated.
        """
        async with self._membership:
            if name not in self._links:
                raise ClusterError(f"unknown worker {name!r}")
            if len(self._links) == 1:
                raise ClusterError("cannot remove the last worker")
            link = self._links[name]
            self._router.remove(name)
            keys = sorted(await self._call_link(link, "model_keys"))
            for key in keys:
                await self._migrate(
                    key, link, self._links[self._router.route(key)]
                )
            if shutdown:
                await link.call("drain", {"timeout": None}, timeout=None)
                await link.call("shutdown", timeout=None)
            await link.close()
            del self._links[name]
            self._breakers.pop(name, None)
            self._stats.forget_worker(name)
            return len(keys)

    async def _migrate(
        self, key: ModelKey, source: _WorkerLink, dest: _WorkerLink
    ) -> None:
        # No wire timeout: migrate_out drains the source's refits, which
        # is allowed to take longer than a routine read.  Never retried —
        # a lost bundle is an error to surface, not to replay.
        bundle = await source.call("migrate_out", {"table": key}, timeout=None)
        await dest.call("migrate_in", {"bundle": bundle}, timeout=None)
        self._stats.record_migration()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    async def fleet_stats(self) -> dict[str, Any]:
        """One ClusterStats-shaped view over the whole fleet.

        ``aggregate`` / ``per_shard`` / ``backend_errors`` mirror
        :meth:`repro.cluster.stats.ClusterStats.snapshot`; ``gateway``
        adds this gateway's own counters and latency windows.  A worker
        that cannot be reached is skipped (its name is listed under
        ``unreachable``) rather than failing the whole scrape.
        """
        names = self._router.shards
        views = await asyncio.gather(
            *(
                self._call_link(self._links[name], "stats")
                for name in names
            ),
            return_exceptions=True,
        )
        per_worker: dict[str, dict[str, Any]] = {}
        unreachable: list[str] = []
        for name, view in zip(names, views):
            if isinstance(view, BaseException):
                unreachable.append(name)
            else:
                per_worker[name] = view
        merged = merge_worker_stats(per_worker)
        merged["per_shard"] = {
            name: dict(view["counters"]) for name, view in per_worker.items()
        }
        merged["gateway"] = self._stats.snapshot()
        merged["unreachable"] = tuple(unreachable)
        merged["breakers"] = {
            name: breaker.state for name, breaker in self._breakers.items()
        }
        return merged

    def __repr__(self) -> str:
        return (
            f"SelectivityGateway(workers={len(self._links)}, "
            f"closed={self._closed})"
        )


class GatewayServer:
    """Host a gateway on its own event-loop thread, serving the protocol.

    Downstream clients (:class:`~repro.net.client.RemoteSelectivityService`)
    speak the same framing the workers do; each client request runs as
    its own asyncio task, so slow calls (a synchronous refit) never
    block fast reads pipelined on the same connection.
    """

    #: Wire methods a client may invoke on the gateway.
    METHODS = frozenset(
        {
            "ping",
            "worker_names",
            "set_worker_address",
            "resync_worker",
            "register_model",
            "unregister_model",
            "model_keys",
            "snapshot_for",
            "feedback_count",
            "estimate",
            "estimate_batch",
            "estimate_batch_mixed",
            "observe",
            "refit_now",
            "flush",
            "drain",
            "add_worker",
            "remove_worker",
            "fleet_stats",
        }
    )

    def __init__(
        self,
        workers: dict[str, tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        **gateway_config: Any,
    ) -> None:
        self._gateway = SelectivityGateway(workers, **gateway_config)
        self._requested_host = host
        self._requested_port = port
        self._host: str | None = None
        self._port: int | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._closed = False

    @property
    def gateway(self) -> SelectivityGateway:
        """The asyncio core (admin via :meth:`run`)."""
        return self._gateway

    @property
    def host(self) -> str:
        """The bound interface (after :meth:`start`)."""
        if self._host is None:
            raise NetError("gateway server is not started")
        return self._host

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._port is None:
            raise NetError("gateway server is not started")
        return self._port

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` clients should dial."""
        return self.host, self.port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> None:
        """Spin the event-loop thread up and wait until accepting."""
        if self._thread is not None:
            raise NetError("gateway server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-net-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise NetError(f"gateway server did not start within {timeout}s")
        if self._startup_error is not None:
            raise self._startup_error

    def _run_loop(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self._gateway.start()
            server = await asyncio.start_server(
                self._handle_client, self._requested_host, self._requested_port
            )
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            await self._gateway.close()
            return
        self._host, self._port = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            await self._gateway.close()

    def run(self, coroutine, timeout: float | None = None) -> Any:
        """Run a coroutine on the gateway loop from sync code (admin ops).

        Example: ``server.run(server.gateway.add_worker(name, host, port))``.
        """
        if self._loop is None:
            raise NetError("gateway server is not started")
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout)

    def close(self, timeout: float = 30.0) -> None:
        """Stop serving, close worker links, join the loop thread."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    message = await read_message(reader)
                except (EOFError, NetError, OSError, ConnectionError):
                    return
                if not isinstance(message, Request):
                    return  # protocol violation; drop the connection
                task = asyncio.create_task(
                    self._serve_request(message, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in tuple(tasks):
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _serve_request(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        stats = self._gateway.stats
        stats.record_request_started()
        try:
            value = await self._dispatch(request.method, request.kwargs)
            response = Response(request.request_id, ok=True, value=value)
        except asyncio.CancelledError:
            stats.record_request_finished(False)
            raise
        except Exception as error:
            response = error_response(request.request_id, error)
        stats.record_request_finished(response.ok)
        async with write_lock:
            try:
                await write_message(writer, response)
            except (OSError, NetError, ConnectionError):
                pass  # client went away; nothing to deliver the reply to

    async def _dispatch(self, method: str, kwargs: dict[str, Any]) -> Any:
        if method not in self.METHODS:
            raise NetError(f"unknown gateway method {method!r}")
        return await getattr(self._gateway, method)(**kwargs)

    def __repr__(self) -> str:
        address = (
            f"({self._host!r}, {self._port})"
            if self._host is not None
            else "unbound"
        )
        return f"GatewayServer(address={address}, closed={self._closed})"
