"""Gateway-side observability: counters, per-worker latency, fleet rollup.

:class:`GatewayStats` is the :class:`~repro.serving.stats.ServingStats`
of the network layer — what the gateway itself did (requests in flight,
per-worker latency windows, retries, reconnects, timeouts), as opposed
to what the workers did with the requests (their own ``ServingStats``,
scraped over the wire).

:func:`merge_worker_stats` is the cross-process half of
:class:`~repro.cluster.stats.ClusterStats`: given each worker's exported
stats view (the worker server's ``stats`` method), it sums the counters,
recomputes the hit rate from summed hits/misses, and computes
percentiles over the *merged* latency reservoirs — the same aggregation
discipline the in-process cluster uses, so dashboards read one schema
whether the fleet is threads or processes.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from repro.exceptions import NetError

__all__ = ["GatewayStats", "merge_worker_stats", "WORKER_SUMMED_COUNTERS"]

#: The worker counters summed fleet-wide — the in-process cluster's list.
WORKER_SUMMED_COUNTERS = (
    "estimate_requests",
    "batch_requests",
    "predicates_served",
    "cache_hits",
    "cache_misses",
    "observations",
    "challenger_observations",
    "refits_triggered",
    "drift_refits_triggered",
    "refits_completed",
    "challenger_refits",
    "promotions",
    "sandwich_estimates",
    "sandwich_learned",
    "sandwich_independence",
    "sandwich_upper_clamps",
    "sandwich_lower_clamps",
    "checkpoints_taken",
    "checkpoint_restores",
)

_BUFFER_COUNTERS = (
    "appended", "applied", "requeued", "dropped", "discarded", "pending",
)


class GatewayStats:
    """Thread-safe counters and per-worker latency windows for a gateway."""

    def __init__(self, latency_window: int = 4096) -> None:
        if latency_window < 1:
            raise NetError("latency_window must be at least 1")
        self._lock = threading.Lock()
        self._latency_window = latency_window
        # worker name -> recent request round-trip seconds (gateway->worker).
        self._worker_latencies: dict[str, deque[float]] = {}
        self.requests = 0
        self.responses = 0
        self.errors = 0
        self.retries = 0
        self.reconnects = 0
        self.timeouts = 0
        self.in_flight = 0
        self.fanouts = 0
        self.migrations = 0
        self.degraded_estimates = 0
        self.breaker_opens = 0
        self.buffered_writes = 0
        self.buffered_writes_replayed = 0
        self.lost_writes = 0
        self.checkpoint_restores = 0
        self.health_failures = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request_started(self) -> None:
        """A client request entered the gateway (any method)."""
        with self._lock:
            self.requests += 1
            self.in_flight += 1

    def record_request_finished(self, ok: bool) -> None:
        """The matching response left the gateway."""
        with self._lock:
            self.in_flight -= 1
            if ok:
                self.responses += 1
            else:
                self.errors += 1

    def record_worker_call(self, worker: str, seconds: float) -> None:
        """One gateway→worker round trip completed."""
        with self._lock:
            window = self._worker_latencies.get(worker)
            if window is None:
                window = deque(maxlen=self._latency_window)
                self._worker_latencies[worker] = window
            window.append(seconds)

    def record_retry(self) -> None:
        """An idempotent read was re-dispatched after a failure."""
        with self._lock:
            self.retries += 1

    def record_reconnect(self) -> None:
        """A worker connection was re-established."""
        with self._lock:
            self.reconnects += 1

    def record_timeout(self) -> None:
        """A worker call exceeded its per-request timeout."""
        with self._lock:
            self.timeouts += 1

    def record_fanout(self, workers: int) -> None:
        """A mixed batch was split across ``workers`` connections."""
        with self._lock:
            self.fanouts += workers

    def record_migration(self) -> None:
        """One key moved between workers across the process boundary."""
        with self._lock:
            self.migrations += 1

    def record_degraded(self, predicates: int = 1) -> None:
        """``predicates`` reads were answered from the degraded path
        (last-known snapshot or the configured prior) instead of a live
        worker."""
        with self._lock:
            self.degraded_estimates += predicates

    def record_breaker_open(self) -> None:
        """A per-worker circuit breaker tripped open."""
        with self._lock:
            self.breaker_opens += 1

    def record_buffered_write(self) -> None:
        """An observe was acknowledged into the outage buffer."""
        with self._lock:
            self.buffered_writes += 1

    def record_buffered_replay(self, count: int = 1) -> None:
        """``count`` journaled/buffered writes were re-delivered to a
        recovered worker."""
        with self._lock:
            self.buffered_writes_replayed += count

    def record_lost_writes(self, count: int) -> None:
        """``count`` acknowledged writes could not be re-delivered after
        a restore (the journal was shorter than the gap) — the honest
        counter the no-silent-loss contract hangs on."""
        with self._lock:
            self.lost_writes += count

    def record_checkpoint_restores(self, keys: int = 1) -> None:
        """``keys`` models came back from checkpoints on a resynced
        worker."""
        with self._lock:
            self.checkpoint_restores += keys

    def record_health_failure(self) -> None:
        """A health-loop ping failed (the churn used to be silent)."""
        with self._lock:
            self.health_failures += 1

    def forget_worker(self, worker: str) -> None:
        """Drop a retired worker's latency window."""
        with self._lock:
            self._worker_latencies.pop(worker, None)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def worker_latency_percentile(self, worker: str, percentile: float) -> float:
        """One worker's recent round-trip percentile (0.0 when idle)."""
        if not (0.0 <= percentile <= 100.0):
            raise NetError("percentile must be in [0, 100]")
        with self._lock:
            window = self._worker_latencies.get(worker)
            if not window:
                return 0.0
            return float(np.percentile(np.array(window), percentile))

    def latency_percentile(self, percentile: float) -> float:
        """Round-trip percentile over every worker's merged window."""
        if not (0.0 <= percentile <= 100.0):
            raise NetError("percentile must be in [0, 100]")
        with self._lock:
            merged = [
                value
                for window in self._worker_latencies.values()
                for value in window
            ]
        if not merged:
            return 0.0
        return float(np.percentile(np.array(merged), percentile))

    def counters(self) -> dict[str, int]:
        """The plain gateway counters under one lock acquisition."""
        with self._lock:
            return {
                "requests": self.requests,
                "responses": self.responses,
                "errors": self.errors,
                "retries": self.retries,
                "reconnects": self.reconnects,
                "timeouts": self.timeouts,
                "in_flight": self.in_flight,
                "fanouts": self.fanouts,
                "migrations": self.migrations,
                "degraded_estimates": self.degraded_estimates,
                "breaker_opens": self.breaker_opens,
                "buffered_writes": self.buffered_writes,
                "buffered_writes_replayed": self.buffered_writes_replayed,
                "lost_writes": self.lost_writes,
                "checkpoint_restores": self.checkpoint_restores,
                "health_failures": self.health_failures,
            }

    def snapshot(self) -> dict[str, object]:
        """Counters plus per-worker p50/p99 round-trip latency."""
        view: dict[str, object] = dict(self.counters())
        with self._lock:
            workers = {
                name: tuple(window)
                for name, window in self._worker_latencies.items()
            }
        per_worker: dict[str, dict[str, float]] = {}
        for name, window in workers.items():
            if window:
                values = np.array(window)
                per_worker[name] = {
                    "p50_latency_seconds": float(np.percentile(values, 50.0)),
                    "p99_latency_seconds": float(np.percentile(values, 99.0)),
                    "calls": len(window),
                }
        view["per_worker_latency"] = per_worker
        view["p99_latency_seconds"] = self.latency_percentile(99.0)
        return view

    def __repr__(self) -> str:
        counters = self.counters()
        return (
            f"GatewayStats(requests={counters['requests']}, "
            f"in_flight={counters['in_flight']}, "
            f"retries={counters['retries']}, "
            f"reconnects={counters['reconnects']})"
        )


def merge_worker_stats(
    per_worker: dict[str, dict[str, object]],
) -> dict[str, object]:
    """Roll per-worker exported stats into one ClusterStats-shaped view.

    ``per_worker`` maps worker name to the dict the worker server's
    ``stats`` method returns: ``counters`` (ServingStats counters),
    ``latencies`` (the latency reservoir), ``buffer`` (ObservationBuffer
    counters), ``backend_error_windows`` and ``model_keys``.  The result
    mirrors :meth:`repro.cluster.stats.ClusterStats.aggregate` — summed
    counters, true hit rate, percentiles over merged reservoirs — so the
    out-of-process fleet reads exactly like the in-process one.
    """
    totals: dict[str, float] = {name: 0 for name in WORKER_SUMMED_COUNTERS}
    buffer_totals = dict.fromkeys(_BUFFER_COUNTERS, 0)
    latencies: list[float] = []
    merged_errors: dict[tuple[str, str], list[float]] = {}
    model_keys = 0
    for view in per_worker.values():
        counters = view.get("counters", {})
        for name in WORKER_SUMMED_COUNTERS:
            totals[name] += counters.get(name, 0)
        latencies.extend(view.get("latencies", ()))
        for name, value in view.get("buffer", {}).items():
            if name in buffer_totals:
                buffer_totals[name] += value
        for scope, window in view.get("backend_error_windows", {}).items():
            merged_errors.setdefault(scope, []).extend(window)
        model_keys += int(view.get("model_keys", 0))
    lookups = totals["cache_hits"] + totals["cache_misses"]
    totals["hit_rate"] = totals["cache_hits"] / lookups if lookups else 0.0
    merged = np.array(latencies) if latencies else None
    totals["p50_latency_seconds"] = (
        float(np.percentile(merged, 50.0)) if merged is not None else 0.0
    )
    totals["p99_latency_seconds"] = (
        float(np.percentile(merged, 99.0)) if merged is not None else 0.0
    )
    for name, value in buffer_totals.items():
        totals[f"observations_{name}"] = value
    totals["shard_count"] = len(per_worker)
    totals["model_keys"] = model_keys
    backend_errors: dict[str, dict[str, float]] = {}
    for (model, backend), window in merged_errors.items():
        if window:
            backend_errors.setdefault(model, {})[backend] = float(
                sum(window) / len(window)
            )
    return {"aggregate": totals, "backend_errors": backend_errors}
