"""The synchronous client: ``SelectivityServing`` over a socket.

:class:`RemoteSelectivityService` satisfies the
:class:`~repro.serving.adapter.SelectivityServing` protocol, so every
existing consumer — :class:`~repro.serving.adapter.ServingEstimator`,
the feedback loop, the access-path optimizer — works against a remote
gateway (or a single worker, which speaks the same protocol) with zero
call-site changes.  Backends are encoded on the way out and snapshots
decoded on the way in, so call sites keep passing and receiving the
same objects they would hand an in-process service.

Failure semantics mirror the gateway's: idempotent reads are retried
with bounded backoff across reconnects; writes (``observe``,
registration) are never auto-retried on a connection failure — the
request may already have been applied, and replaying it could
double-count feedback — so they surface
:class:`~repro.exceptions.WorkerUnavailableError` for the caller to
decide.  A per-request timeout expiring surfaces
:class:`~repro.exceptions.RemoteTimeoutError` and drops the connection
(a late reply on a shared socket would desynchronise every later call).
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import (
    NetError,
    RemoteTimeoutError,
    WorkerUnavailableError,
)
from repro.serving.registry import ModelKey, normalize_key
from repro.serving.snapshot import ModelSnapshot
from repro.net.protocol import (
    Request,
    Response,
    decode_snapshot,
    encode_backend,
    raise_remote_error,
    recv_message,
    send_message,
)

__all__ = ["RemoteSelectivityService", "connect"]

#: Methods safe to replay after a connection failure (reads only).
_IDEMPOTENT_READS = frozenset(
    {
        "estimate",
        "estimate_batch",
        "estimate_batch_mixed",
        "snapshot_for",
        "feedback_count",
        "model_keys",
        "fleet_stats",
        "stats",
        "worker_names",
        "ping",
    }
)

#: Sentinel distinguishing "use the default timeout" from "no timeout".
_DEFAULT_TIMEOUT = object()


class RemoteSelectivityService:
    """A serving backend on the other side of a socket."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        """Dial ``host:port`` lazily (the first call connects).

        ``timeout`` bounds every routine round trip; unbounded
        operations (``refit_now``, ``drain``, ``flush``) waive it.
        ``max_retries`` applies to idempotent reads only.
        """
        if max_retries < 0:
            raise NetError("max_retries must be non-negative")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The remote endpoint this client dials."""
        return self._host, self._port

    @property
    def connected(self) -> bool:
        """True while a live connection is held."""
        with self._lock:
            return self._sock is not None

    def close(self) -> None:
        """Drop the connection.  Idempotent; later calls redial."""
        with self._lock:
            self._drop_locked()

    def __enter__(self) -> "RemoteSelectivityService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_connected_locked(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self._host, self._port),
                    timeout=self._timeout if self._timeout else 30.0,
                )
            except OSError as error:
                raise WorkerUnavailableError(
                    f"cannot connect to {self._host}:{self._port}: {error}"
                ) from error
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _call(
        self,
        method: str,
        kwargs: dict[str, Any] | None = None,
        timeout: object = _DEFAULT_TIMEOUT,
    ) -> Any:
        """One request/response round trip, with read-only retry."""
        wire_timeout = (
            self._timeout if timeout is _DEFAULT_TIMEOUT else timeout
        )
        retries = self._max_retries if method in _IDEMPOTENT_READS else 0
        last_error: Exception | None = None
        for attempt in range(retries + 1):
            try:
                response, request_id = self._round_trip(
                    method, kwargs, wire_timeout
                )
            except RemoteTimeoutError:
                raise  # the server may still apply it; never replay
            except (OSError, EOFError, NetError) as error:
                last_error = error
                if attempt < retries:
                    time.sleep(self._retry_backoff * (2**attempt))
                    continue
                raise WorkerUnavailableError(
                    f"{method!r} failed against {self._host}:{self._port}: "
                    f"{error}"
                ) from error
            if response.request_id != request_id:
                with self._lock:
                    self._drop_locked()
                raise NetError(
                    f"response id {response.request_id} does not match "
                    f"request id {request_id}; connection desynchronised"
                )
            raise_remote_error(response)
            return response.value
        raise WorkerUnavailableError(str(last_error))  # pragma: no cover

    def _round_trip(
        self,
        method: str,
        kwargs: dict[str, Any] | None,
        wire_timeout: float | None,
    ) -> tuple[Response, int]:
        with self._lock:
            sock = self._ensure_connected_locked()
            sock.settimeout(wire_timeout)
            request_id = self._next_id
            self._next_id += 1
            try:
                send_message(sock, Request(request_id, method, dict(kwargs or {})))
                response = recv_message(sock)
            except socket.timeout:
                # A late reply on this socket would answer the *next*
                # request; the connection is unusable once we give up.
                self._drop_locked()
                raise RemoteTimeoutError(
                    f"{method!r} did not complete within {wire_timeout}s"
                ) from None
            except (OSError, EOFError, NetError):
                self._drop_locked()
                raise
            if not isinstance(response, Response):
                self._drop_locked()
                raise NetError("peer sent a non-response frame")
            return response, request_id

    # ------------------------------------------------------------------
    # SelectivityServing surface
    # ------------------------------------------------------------------
    def key_for(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> ModelKey:
        """Normalise ``(table, columns)`` locally — no round trip."""
        return normalize_key(table, columns)

    def register_model(
        self,
        table: str | ModelKey,
        trainer: object,
        columns: Sequence[str] = (),
    ) -> ModelKey:
        """Encode the trainer and install it on the remote fleet."""
        key = normalize_key(table, columns)
        return self._call(
            "register_model",
            {"table": key, "backend": encode_backend(trainer)},
        )

    def unregister_model(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> bytes:
        """Withdraw a key's backend; returns the encoded trainer bytes."""
        key = normalize_key(table, columns)
        return self._call("unregister_model", {"table": key}, timeout=None)

    def model_keys(self) -> tuple[ModelKey, ...]:
        """Every key served by the remote fleet, sorted."""
        return tuple(self._call("model_keys"))

    def snapshot_for(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> ModelSnapshot:
        """The remote snapshot currently serving a key, decoded."""
        key = normalize_key(table, columns)
        return decode_snapshot(self._call("snapshot_for", {"table": key}))

    def feedback_count(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> int:
        """Observations accepted for a key (absorbed plus buffered)."""
        key = normalize_key(table, columns)
        return self._call("feedback_count", {"table": key})

    def estimate(
        self,
        table: str | ModelKey,
        predicate: object,
        columns: Sequence[str] = (),
    ) -> float:
        """Scalar estimate from the remote snapshot."""
        key = normalize_key(table, columns)
        return self._call(
            "estimate", {"table": key, "predicate": predicate}
        )

    def estimate_batch(
        self,
        table: str | ModelKey,
        predicates: Sequence[object],
        columns: Sequence[str] = (),
    ) -> np.ndarray:
        """Batched single-key estimates (one remote vectorised pass)."""
        key = normalize_key(table, columns)
        return self._call(
            "estimate_batch", {"table": key, "predicates": list(predicates)}
        )

    def estimate_batch_mixed(
        self, pairs: Sequence[tuple[str | ModelKey, object]]
    ) -> np.ndarray:
        """Mixed-key burst; the gateway fans it across workers."""
        return self._call(
            "estimate_batch_mixed",
            {"pairs": [(normalize_key(table, ()), predicate)
                       for table, predicate in pairs]},
        )

    def observe(
        self,
        table: str | ModelKey,
        predicate: object,
        selectivity: float,
        columns: Sequence[str] = (),
    ) -> bool:
        """Record one observation remotely (never auto-retried)."""
        key = normalize_key(table, columns)
        return self._call(
            "observe",
            {"table": key, "predicate": predicate, "selectivity": selectivity},
        )

    # ------------------------------------------------------------------
    # Lifecycle and admin passthrough
    # ------------------------------------------------------------------
    def refit_now(
        self, table: str | ModelKey, columns: Sequence[str] = ()
    ) -> ModelSnapshot:
        """Flush the key's backlog and retrain synchronously (unbounded)."""
        key = normalize_key(table, columns)
        return decode_snapshot(
            self._call("refit_now", {"table": key}, timeout=None)
        )

    def flush(self, blocking: bool = True) -> int:
        """Replay buffered observations fleet-wide; total applied."""
        return self._call("flush", {"blocking": blocking}, timeout=None)

    def drain(self, timeout: float | None = None) -> None:
        """Flush all buffers and wait out all refits, fleet-wide.

        ``timeout`` is the remote total budget; the wire wait adds slack
        on top so the remote's own budget error reaches us as a
        ``ServingError`` rather than a local timeout.
        """
        self._call(
            "drain",
            {"timeout": timeout},
            timeout=None if timeout is None else timeout + 10.0,
        )

    def ping(self, timeout: float | None = 10.0) -> str:
        """Liveness round trip."""
        return self._call("ping", timeout=timeout)

    def fleet_stats(self) -> dict[str, Any]:
        """The gateway's ClusterStats-shaped fleet view."""
        return self._call("fleet_stats")

    def worker_names(self) -> tuple[str, ...]:
        """The gateway's current ring membership."""
        return tuple(self._call("worker_names"))

    def add_worker(self, name: str, host: str, port: int) -> str:
        """Grow the remote ring (migrations included); unbounded."""
        return self._call(
            "add_worker",
            {"name": name, "host": host, "port": port},
            timeout=None,
        )

    def remove_worker(self, name: str, shutdown: bool = False) -> int:
        """Retire a remote worker after migrating its keys; unbounded."""
        return self._call(
            "remove_worker", {"name": name, "shutdown": shutdown}, timeout=None
        )

    def set_worker_address(self, name: str, host: str, port: int) -> None:
        """Repoint a worker link after a respawn/failover."""
        self._call(
            "set_worker_address", {"name": name, "host": host, "port": port}
        )

    def resync_worker(self, name: str) -> dict[str, int]:
        """Reconcile a restored worker's feedback with the gateway journal.

        Unbounded: replay volume scales with the outage.
        """
        return self._call("resync_worker", {"name": name}, timeout=None)

    def __repr__(self) -> str:
        return (
            f"RemoteSelectivityService(address=({self._host!r}, "
            f"{self._port}), connected={self.connected})"
        )


def connect(
    host: str,
    port: int,
    timeout: float | None = 30.0,
    **config: Any,
) -> RemoteSelectivityService:
    """Dial a gateway (or worker) and verify liveness with one ping."""
    client = RemoteSelectivityService(host, port, timeout=timeout, **config)
    client.ping()
    return client
