"""Durable per-key model checkpoints: versioned, atomic, pruned.

The fleet's trained state — models improved by thousands of feedback
observations — lives in worker-process memory, so a SIGKILL used to
lose every model on the shard.  This module makes that state durable:

* :func:`checkpoint_bundle` collects one key's full serving state into
  a picklable bundle — the *non-destructive* twin of
  :func:`~repro.net.worker.migration_bundle`.  Migration withdraws the
  key from its source; a checkpoint leaves it serving, capturing the
  trainer under its lock via
  :meth:`~repro.serving.service.SelectivityService.export_trainer`.
* :class:`CheckpointStore` persists bundles with write-then-rename
  atomicity (a crash mid-write can never corrupt the latest good
  version), monotonically increasing version numbers, and prune-to-K
  retention.  Unreadable files (truncated by a crash, or written by an
  incompatible build) are skipped in favour of the next older version.
* :func:`restore_bundle` reinstalls a bundle on a fresh worker with
  ``refit_backlog=False`` — the exact model bytes the checkpoint
  captured are republished, so restored estimates match the checkpoint
  to ≤ 1e-12 (the same parity contract migration has).

Feedback that arrived after the last checkpoint is *not* on disk; the
gateway's write journal (see
:meth:`~repro.net.gateway.SelectivityGateway.resync_worker`) re-delivers
it after a restore, which is how the fleet loses no acknowledged
feedback across a kill.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections.abc import Iterator
from pathlib import Path
from typing import Any

from repro.exceptions import NetError
from repro.serving.registry import ModelKey
from repro.cluster.shard import ShardWorker
from repro.net.protocol import decode_backend, encode_backend

__all__ = ["CheckpointStore", "checkpoint_bundle", "restore_bundle"]

_FILE_PREFIX = "ckpt-"
_FILE_SUFFIX = ".pkl"


def _key_slug(key: ModelKey) -> str:
    """A filesystem-safe, collision-resistant directory name for a key."""
    identity = repr((key.table, key.columns)).encode("utf-8")
    digest = hashlib.blake2b(identity, digest_size=8).hexdigest()
    readable = "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in key.table
    )[:48]
    return f"{readable}-{digest}" if readable else digest


def checkpoint_bundle(worker: ShardWorker, key: ModelKey) -> dict[str, Any]:
    """Collect one key's durable state while it keeps serving.

    Buffered feedback is flushed into the trainer first so the captured
    ``feedback_count`` means "everything acknowledged up to here is in
    this bundle".  The trainer (and any challenger) is encoded under its
    lock; drift evidence, per-backend A/B error windows and lifetime
    totals ride along exactly as they do in a migration bundle.
    """
    worker.flush(key, blocking=True)
    service = worker.service
    trainer = service.export_trainer(key, serializer=encode_backend)
    bundle: dict[str, Any] = {
        "key": key,
        "trainer": trainer,
        "drift_errors": tuple(service.drift_errors(key)),
        "backend_windows": {
            backend: tuple(window)
            for (model, backend), window
            in worker.stats.backend_error_windows().items()
            if model == str(key)
        },
        "lifetime_totals": {
            (model, backend): totals
            for (model, backend), totals
            in worker.stats.lifetime_error_totals().items()
            if model == str(key)
        },
        "challenger": None,
        "challenger_errors": (),
        "shadow_frac": 1.0,
        "feedback_count": service.feedback_count(key),
    }
    if worker.has_challenger(key):
        bundle["challenger_errors"] = tuple(
            service.challenger_drift_errors(key)
        )
        bundle["shadow_frac"] = service.challenger_shadow_frac(key)
        bundle["challenger"] = service.export_challenger(
            key, serializer=encode_backend
        )
    return bundle


def restore_bundle(worker: ShardWorker, bundle: dict[str, Any]) -> ModelKey:
    """Reinstall a :func:`checkpoint_bundle` on a (fresh) worker.

    ``refit_backlog=False`` republishes the exact model the checkpoint
    captured — a restore recovers state, it does not retrain.
    """
    key = bundle["key"]
    worker.register_model(
        key,
        decode_backend(bundle["trainer"]),
        refit_backlog=False,
        initial_errors=bundle["drift_errors"],
    )
    if bundle.get("challenger") is not None:
        worker.register_challenger(
            key,
            decode_backend(bundle["challenger"]),
            shadow_frac=bundle["shadow_frac"],
            refit_backlog=False,
            initial_errors=bundle["challenger_errors"],
        )
    for backend, window in bundle.get("backend_windows", {}).items():
        worker.stats.record_backend_errors(key, backend, window)
    if bundle.get("lifetime_totals"):
        worker.stats.absorb_lifetime_errors(bundle["lifetime_totals"])
    return key


class CheckpointStore:
    """Versioned on-disk checkpoint bundles under one root directory.

    Layout: ``root/<key-slug>/ckpt-00000001.pkl`` …, one directory per
    model key, version numbers strictly increasing per key.  Every save
    writes to a temp file, fsyncs, then :func:`os.replace`\\ s into place
    and fsyncs the directory — readers (including a worker booting after
    a crash mid-save) only ever see complete files.  After each save the
    key is pruned to its newest ``keep`` versions.

    Trust boundary: bundles are pickles, same as the wire protocol —
    the checkpoint directory must be as trusted as the worker itself.
    """

    def __init__(self, root: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise NetError("keep must be at least 1")
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._keep = keep
        self._lock = threading.Lock()

    @property
    def root(self) -> Path:
        """The directory all checkpoints live under."""
        return self._root

    @property
    def keep(self) -> int:
        """How many versions each key retains after a save."""
        return self._keep

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(self, bundle: dict[str, Any]) -> Path:
        """Persist one bundle atomically; returns the final path."""
        key = bundle.get("key")
        if not isinstance(key, ModelKey):
            raise NetError("a checkpoint bundle must carry its ModelKey")
        payload = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            directory = self._root / _key_slug(key)
            directory.mkdir(parents=True, exist_ok=True)
            version = self._versions_in(directory)[-1:]
            next_version = (version[0] if version else 0) + 1
            final = directory / (
                f"{_FILE_PREFIX}{next_version:08d}{_FILE_SUFFIX}"
            )
            temp = directory / f".tmp-{next_version:08d}"
            with open(temp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, final)
            self._fsync_dir(directory)
            self._prune_locked(directory)
            return final

    def discard(self, key: ModelKey) -> int:
        """Drop every version of a key (it migrated away / unregistered).

        Returns how many checkpoint files were removed.  Without this, a
        respawn would resurrect keys the ring no longer routes here.
        """
        with self._lock:
            directory = self._root / _key_slug(key)
            if not directory.is_dir():
                return 0
            removed = 0
            for path in directory.iterdir():
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
            try:
                directory.rmdir()
            except OSError:
                pass
            return removed

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def versions(self, key: ModelKey) -> tuple[int, ...]:
        """The retained version numbers for a key, oldest first."""
        with self._lock:
            return tuple(self._versions_in(self._root / _key_slug(key)))

    def latest(self, key: ModelKey) -> dict[str, Any] | None:
        """The newest readable bundle for a key (None when there is none).

        Falls back to older versions when the newest file is unreadable
        — a crash can race the save, but never costs more than the
        not-yet-durable version.
        """
        directory = self._root / _key_slug(key)
        with self._lock:
            versions = self._versions_in(directory)
        for version in reversed(versions):
            bundle = self._load(
                directory / f"{_FILE_PREFIX}{version:08d}{_FILE_SUFFIX}"
            )
            if bundle is not None:
                return bundle
        return None

    def latest_bundles(self) -> Iterator[dict[str, Any]]:
        """Yield each checkpointed key's newest readable bundle.

        This is the boot-time restore surface: iterate, reinstall each
        bundle via :func:`restore_bundle`, and the worker serves exactly
        what it last checkpointed.
        """
        with self._lock:
            directories = sorted(
                path for path in self._root.iterdir() if path.is_dir()
            )
        for directory in directories:
            with self._lock:
                versions = self._versions_in(directory)
            for version in reversed(versions):
                bundle = self._load(
                    directory / f"{_FILE_PREFIX}{version:08d}{_FILE_SUFFIX}"
                )
                if bundle is not None:
                    yield bundle
                    break

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _versions_in(directory: Path) -> list[int]:
        if not directory.is_dir():
            return []
        versions: list[int] = []
        for path in directory.iterdir():
            name = path.name
            if not (
                name.startswith(_FILE_PREFIX) and name.endswith(_FILE_SUFFIX)
            ):
                continue
            stem = name[len(_FILE_PREFIX):-len(_FILE_SUFFIX)]
            try:
                versions.append(int(stem))
            except ValueError:
                continue
        versions.sort()
        return versions

    @staticmethod
    def _load(path: Path) -> dict[str, Any] | None:
        try:
            with open(path, "rb") as handle:
                bundle = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return None
        if not isinstance(bundle, dict) or "key" not in bundle:
            return None
        return bundle

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _prune_locked(self, directory: Path) -> None:
        versions = self._versions_in(directory)
        for version in versions[:-self._keep]:
            try:
                (
                    directory / f"{_FILE_PREFIX}{version:08d}{_FILE_SUFFIX}"
                ).unlink()
            except OSError:
                continue

    def __repr__(self) -> str:
        return f"CheckpointStore(root={str(self._root)!r}, keep={self._keep})"
