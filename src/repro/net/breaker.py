"""Failure isolation primitives: circuit breaker and jittered backoff.

:class:`CircuitBreaker` is the standard three-state breaker.  CLOSED
passes every call and counts consecutive failures; after
``failure_threshold`` of them the breaker OPENs and rejects calls
outright (the caller fails fast to its degraded path instead of waiting
out timeouts against a dead peer).  Once ``cooldown_seconds`` have
passed the breaker turns HALF_OPEN and admits exactly one probe call:
success closes it, failure re-opens it and restarts the cooldown.

The jitter helpers exist because deterministic exponential backoff
synchronises retriers: every link that failed at the same instant
retries at the same instant, hammering a recovering worker in lockstep.
:func:`full_jitter` (delay uniform in ``[0, base * 2**attempt]``) is the
read-retry flavour — cheap calls, many concurrent retriers, spread them
as thin as possible.  :func:`equal_jitter` (uniform in the upper half)
is the respawn flavour — a supervisor restart is expensive, so keep a
floor under the delay while still de-synchronising multiple crashed
workers.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable

from repro.exceptions import NetError

__all__ = ["CircuitBreaker", "full_jitter", "equal_jitter"]


def full_jitter(
    base: float, attempt: int, rng: random.Random
) -> float:
    """A delay uniform in ``[0, base * 2**attempt]`` (AWS full jitter)."""
    if base < 0:
        raise NetError("backoff base must be non-negative")
    if attempt < 0:
        raise NetError("attempt must be non-negative")
    return rng.random() * base * (2.0**attempt)


def equal_jitter(
    base: float,
    attempt: int,
    rng: random.Random,
    cap: float | None = None,
) -> float:
    """A delay uniform in the upper half of the exponential envelope.

    ``cap``, when given, bounds the envelope before halving, so the
    delay never exceeds ``cap`` no matter how many attempts have failed.
    """
    if base < 0:
        raise NetError("backoff base must be non-negative")
    if attempt < 0:
        raise NetError("attempt must be non-negative")
    envelope = base * (2.0**attempt)
    if cap is not None:
        envelope = min(cap, envelope)
    return envelope / 2.0 + rng.random() * envelope / 2.0


class CircuitBreaker:
    """A thread-safe three-state (closed/open/half-open) circuit breaker.

    The OPEN → HALF_OPEN promotion is lazy: it happens inside
    :meth:`allow` / :meth:`state` once the cooldown has elapsed, so the
    breaker needs no timer thread.  In HALF_OPEN exactly one caller at a
    time gets ``allow() == True`` (the probe); everyone else keeps
    failing fast until the probe reports back.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise NetError("failure_threshold must be at least 1")
        if cooldown_seconds <= 0:
            raise NetError("cooldown_seconds must be positive")
        self._threshold = failure_threshold
        self._cooldown = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Total CLOSED/HALF_OPEN → OPEN transitions over the lifetime.
        self.opens = 0

    @property
    def state(self) -> str:
        """The current state (promoting OPEN to HALF_OPEN when due)."""
        with self._lock:
            return self._state_locked()

    @property
    def failure_threshold(self) -> int:
        """Consecutive failures that trip the breaker."""
        return self._threshold

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self._cooldown
        ):
            self._state = self.HALF_OPEN
            self._probe_inflight = False
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?

        CLOSED always allows; OPEN never does; HALF_OPEN admits one
        probe at a time (the admitted caller must report back via
        :meth:`record_success` / :meth:`record_failure`).
        """
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.OPEN:
                return False
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        """A call completed; close the breaker and forget the failures."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probe_inflight = False

    def record_failure(self) -> bool:
        """A call failed.  Returns True when *this* failure opened the
        breaker (the caller counts breaker-open events exactly once)."""
        with self._lock:
            state = self._state_locked()
            if state == self.HALF_OPEN:
                # The probe failed: back to OPEN, restart the cooldown.
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                self.opens += 1
                return True
            self._failures += 1
            if state == self.CLOSED and self._failures >= self._threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.opens += 1
                return True
            return False

    def reset(self) -> None:
        """Force the breaker closed (operator override)."""
        self.record_success()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"threshold={self._threshold}, opens={self.opens})"
        )
