"""Out-of-process serving: gateway, shard workers, and the wire protocol.

The single-process story (PR 1–5) tops out at one interpreter: no matter
how many in-process shards the cluster spins up, every estimate is
served under one GIL.  This package puts the same serving stack behind
real process and socket boundaries:

* :mod:`repro.net.protocol` — a length-prefixed binary framing layer
  with request/response messages covering the
  :class:`~repro.serving.adapter.SelectivityServing` surface, plus
  snapshot/backend serialisation helpers with an explicit round-trip
  contract (estimate parity ≤ 1e-12, no data sources or replay history
  on the wire).
* :mod:`repro.net.worker` — :class:`WorkerServer` hosts a full
  :class:`~repro.cluster.shard.ShardWorker` stack (registry, cache,
  scheduler, buffer) behind a threaded TCP server;
  :class:`WorkerProcess` launches one in a child process, which is what
  actually bypasses the GIL.
* :mod:`repro.net.gateway` — :class:`SelectivityGateway`, an asyncio
  front-end that routes model keys over the workers via the same BLAKE2b
  :class:`~repro.cluster.router.ShardRouter` the in-process cluster
  uses, fans mixed batches out across worker connections with
  input-order reassembly, pipelines concurrent requests per connection,
  health-checks workers, and migrates keys across the process boundary
  on membership changes by shipping the frozen snapshot.
  :class:`GatewayServer` is the thread-hosted sync facade.
* :mod:`repro.net.client` — :class:`RemoteSelectivityService`, a
  synchronous client satisfying :class:`SelectivityServing`, so
  :class:`~repro.serving.adapter.ServingEstimator`, the feedback loop,
  and the optimizer work over the wire with zero call-site changes.
* :mod:`repro.net.stats` — gateway-side counters (in-flight, per-worker
  latency windows, retries, reconnects) and the fleet aggregation that
  merges remote worker stats into a
  :class:`~repro.cluster.stats.ClusterStats`-compatible view.
* :mod:`repro.net.breaker` — :class:`CircuitBreaker` (closed → open →
  half-open probe) and the jittered-backoff helpers the gateway and
  supervisor share.
* :mod:`repro.net.checkpoint` — :class:`CheckpointStore`, durable
  per-key snapshot+trainer bundles written atomically, so a respawned
  worker boots with its learned state instead of a cold prior.
* :mod:`repro.net.supervisor` — :class:`FleetSupervisor`, which watches
  worker processes, respawns crashes with backoff, repoints the
  gateway, and triggers journal resync; gives up after a crash loop.
* :mod:`repro.net.chaos` — :class:`ChaosProxy` and
  :class:`ChaosSchedule`, seeded fault injection (dropped connects,
  delayed frames, severed streams, kill timers) for tests and the
  fault benchmark.

Trust boundary: frames carry pickled payloads, so the protocol is for
links you trust end to end (localhost, a private service mesh) — the
same boundary as multiprocessing itself.  TLS/auth is a roadmap item.
"""

from repro.net.breaker import CircuitBreaker, equal_jitter, full_jitter
from repro.net.chaos import ChaosProxy, ChaosSchedule
from repro.net.checkpoint import (
    CheckpointStore,
    checkpoint_bundle,
    restore_bundle,
)
from repro.net.client import RemoteSelectivityService, connect
from repro.net.gateway import GatewayServer, SelectivityGateway
from repro.net.protocol import (
    Request,
    Response,
    decode_backend,
    decode_snapshot,
    encode_backend,
    encode_snapshot,
)
from repro.net.stats import GatewayStats, merge_worker_stats
from repro.net.supervisor import FleetSupervisor
from repro.net.worker import WorkerProcess, WorkerServer, run_worker

__all__ = [
    "Request",
    "Response",
    "encode_snapshot",
    "decode_snapshot",
    "encode_backend",
    "decode_backend",
    "WorkerServer",
    "WorkerProcess",
    "run_worker",
    "SelectivityGateway",
    "GatewayServer",
    "RemoteSelectivityService",
    "connect",
    "GatewayStats",
    "merge_worker_stats",
    "CircuitBreaker",
    "full_jitter",
    "equal_jitter",
    "CheckpointStore",
    "checkpoint_bundle",
    "restore_bundle",
    "FleetSupervisor",
    "ChaosProxy",
    "ChaosSchedule",
]
