"""Deterministic fault injection for the serving fleet's TCP links.

:class:`ChaosProxy` is a threaded TCP forwarder that sits between a
client (gateway link or :class:`~repro.net.client.
RemoteSelectivityService`) and a real listener, and misbehaves on a
seeded schedule:

* ``connect_drop_rate`` — accept an incoming connection and immediately
  close it, so the client sees a reset before the first frame,
* ``delay_range`` — sleep a seeded-uniform amount before forwarding
  each chunk, stretching frame latency toward (and past) timeouts,
* ``sever_rate`` — cut an established connection mid-stream, after a
  chunk has been forwarded, and
* :meth:`sever_all` — drop every live connection at once (the "switch
  reboot" test).

All randomness comes from one :class:`random.Random` seeded in the
constructor, so a failing chaos test replays exactly.  Rates are
runtime-mutable (:meth:`configure`) so a test can run a clean warm-up,
turn faults on, then heal the link — the proxy address never changes,
which is precisely what makes it useful: the fleet under test keeps
dialing the same endpoint while the network under it degrades.

:class:`ChaosSchedule` is the companion kill-timer: a seeded generator
of inter-fault delays for driving worker-kill loops in benchmarks.
"""

from __future__ import annotations

import random
import socket
import threading
import time

from repro.exceptions import NetError

__all__ = ["ChaosProxy", "ChaosSchedule"]

_ACCEPT_TIMEOUT = 0.2


class ChaosProxy:
    """A misbehaving TCP relay in front of a real listener."""

    def __init__(
        self,
        target_host: str,
        target_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: int = 0,
        connect_drop_rate: float = 0.0,
        delay_range: tuple[float, float] = (0.0, 0.0),
        sever_rate: float = 0.0,
        chunk_size: int = 4096,
    ) -> None:
        self._target = (target_host, target_port)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._configure_locked(connect_drop_rate, delay_range, sever_rate)
        if chunk_size < 1:
            raise NetError("chunk_size must be at least 1")
        self._chunk_size = chunk_size
        self._closing = threading.Event()
        self._conn_lock = threading.Lock()
        self._live: set[socket.socket] = set()
        self.connections_accepted = 0
        self.connections_dropped = 0
        self.connections_severed = 0
        self.chunks_delayed = 0
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(64)
        listener.settimeout(_ACCEPT_TIMEOUT)
        self._listener = listener
        self._address = listener.getsockname()
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-proxy", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def _configure_locked(
        self,
        connect_drop_rate: float,
        delay_range: tuple[float, float],
        sever_rate: float,
    ) -> None:
        if not (0.0 <= connect_drop_rate <= 1.0):
            raise NetError("connect_drop_rate must be in [0, 1]")
        if not (0.0 <= sever_rate <= 1.0):
            raise NetError("sever_rate must be in [0, 1]")
        low, high = delay_range
        if low < 0 or high < low:
            raise NetError("delay_range must satisfy 0 <= low <= high")
        self._connect_drop_rate = connect_drop_rate
        self._delay_range = (float(low), float(high))
        self._sever_rate = sever_rate

    def configure(
        self,
        connect_drop_rate: float | None = None,
        delay_range: tuple[float, float] | None = None,
        sever_rate: float | None = None,
    ) -> None:
        """Change fault rates at runtime; ``None`` keeps a current value."""
        with self._lock:
            self._configure_locked(
                self._connect_drop_rate
                if connect_drop_rate is None
                else connect_drop_rate,
                self._delay_range if delay_range is None else delay_range,
                self._sever_rate if sever_rate is None else sever_rate,
            )

    def heal(self) -> None:
        """Turn every fault off — the proxy becomes a clean relay."""
        self.configure(0.0, (0.0, 0.0), 0.0)

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` clients should dial instead of the target."""
        return self._address

    # ------------------------------------------------------------------
    # Faults on demand
    # ------------------------------------------------------------------
    def sever_all(self) -> int:
        """Cut every live connection now; returns how many were cut."""
        with self._conn_lock:
            victims = list(self._live)
            self._live.clear()
        for sock in victims:
            self._slam(sock)
        self.connections_severed += len(victims)
        return len(victims)

    # ------------------------------------------------------------------
    # Relay machinery
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.connections_accepted += 1
            with self._lock:
                drop = self._rng.random() < self._connect_drop_rate
            if drop:
                self.connections_dropped += 1
                self._slam(client)
                continue
            try:
                upstream = socket.create_connection(self._target, timeout=5.0)
            except OSError:
                # Target itself is down: behave like a refused connection.
                self.connections_dropped += 1
                self._slam(client)
                continue
            with self._conn_lock:
                self._live.add(client)
                self._live.add(upstream)
            for source, sink in ((client, upstream), (upstream, client)):
                threading.Thread(
                    target=self._pump,
                    args=(source, sink),
                    name="repro-chaos-pump",
                    daemon=True,
                ).start()

    def _pump(self, source: socket.socket, sink: socket.socket) -> None:
        try:
            while not self._closing.is_set():
                chunk = source.recv(self._chunk_size)
                if not chunk:
                    break
                with self._lock:
                    low, high = self._delay_range
                    delay = (
                        self._rng.uniform(low, high) if high > 0 else 0.0
                    )
                    sever = self._rng.random() < self._sever_rate
                if delay > 0:
                    self.chunks_delayed += 1
                    time.sleep(delay)
                sink.sendall(chunk)
                if sever:
                    self.connections_severed += 1
                    self._slam(source)
                    self._slam(sink)
                    break
        except OSError:
            pass
        finally:
            with self._conn_lock:
                self._live.discard(source)
                self._live.discard(sink)
            self._slam(source)
            self._slam(sink)

    @staticmethod
    def _slam(sock: socket.socket) -> None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Stop accepting, cut live connections, release the port."""
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self.sever_all()
        self._thread.join(5.0)

    def counters(self) -> dict[str, int]:
        """Fault totals since construction, as a plain dict."""
        return {
            "connections_accepted": self.connections_accepted,
            "connections_dropped": self.connections_dropped,
            "connections_severed": self.connections_severed,
            "chunks_delayed": self.chunks_delayed,
        }

    def __enter__(self) -> ChaosProxy:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        host, port = self._address
        return (
            f"ChaosProxy({host}:{port} -> "
            f"{self._target[0]}:{self._target[1]}, "
            f"drop={self._connect_drop_rate}, sever={self._sever_rate})"
        )


class ChaosSchedule:
    """Seeded inter-fault delays for kill loops.

    ``next_delay()`` yields uniform draws from ``mean_interval`` widened
    by ``jitter`` (fraction of the mean on each side), so a benchmark's
    kill timing is irregular but exactly reproducible per seed.
    """

    def __init__(
        self,
        seed: int = 0,
        mean_interval: float = 1.0,
        jitter: float = 0.5,
    ) -> None:
        if mean_interval <= 0:
            raise NetError("mean_interval must be positive")
        if not (0.0 <= jitter <= 1.0):
            raise NetError("jitter must be in [0, 1]")
        self._rng = random.Random(seed)
        self._mean = mean_interval
        self._jitter = jitter

    def next_delay(self) -> float:
        """Seconds until the next injected fault."""
        spread = self._mean * self._jitter
        return self._rng.uniform(self._mean - spread, self._mean + spread)

    def __repr__(self) -> str:
        return (
            f"ChaosSchedule(mean={self._mean}, jitter={self._jitter})"
        )
