"""Supervised respawn: watch worker processes, restart, repoint, resync.

:class:`FleetSupervisor` closes the loop the fault-tolerance layer
needs a driver for: it polls each managed worker's ``alive`` flag, and
when a worker dies it

1. respawns it via the factory the caller registered (a fresh
   :class:`~repro.net.worker.WorkerProcess` with the same shard id and
   checkpoint directory, so the child boots by restoring its latest
   checkpoints),
2. repoints the gateway's link at the new address via the existing
   ``set_worker_address``, and
3. asks the gateway to ``resync_worker`` — re-delivering the
   acknowledged feedback the checkpoint missed and replaying writes
   buffered during the outage.

Crash loops are contained two ways: respawn delays grow exponentially
with jitter (:func:`~repro.net.breaker.equal_jitter`, so several
crashed workers don't respawn in lockstep), and after ``max_restarts``
consecutive failures the supervisor's restart circuit breaker gives the
worker up — the gateway keeps serving its keys degraded, and an
operator clears the state with :meth:`FleetSupervisor.reset`.  A worker
that stays alive ``stable_seconds`` after a respawn resets its failure
count: only *consecutive* crashes count toward giving up.

The gateway handle is duck-typed: a
:class:`~repro.net.gateway.GatewayServer` (driven through its ``run``
bridge), a :class:`~repro.net.client.RemoteSelectivityService`, or any
object with ``set_worker_address`` (and optionally ``resync_worker``)
works; so do stub processes in tests — anything with ``alive``,
``address``, and ``shard_id`` can be supervised.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.exceptions import NetError
from repro.net.breaker import equal_jitter

__all__ = ["FleetSupervisor"]


class _Supervised:
    """One managed worker's supervision state."""

    __slots__ = (
        "name",
        "process",
        "factory",
        "failures",
        "restarts",
        "next_attempt",
        "spawned_at",
        "given_up",
        "last_error",
        "last_exitcode",
    )

    def __init__(
        self, name: str, process: Any, factory: Callable[[], Any], now: float
    ) -> None:
        self.name = name
        self.process = process
        self.factory = factory
        self.failures = 0
        self.restarts = 0
        self.next_attempt = now
        self.spawned_at = now
        self.given_up = False
        self.last_error: str | None = None
        self.last_exitcode: int | None = None


class FleetSupervisor:
    """Respawn dead workers with backoff and repoint the gateway."""

    def __init__(
        self,
        gateway: Any = None,
        poll_interval: float = 0.25,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        max_restarts: int = 5,
        stable_seconds: float = 10.0,
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.monotonic,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        """``gateway`` is where respawned addresses get repointed (may be
        None for bare process babysitting).  ``max_restarts`` bounds
        *consecutive* failures before the restart breaker gives a worker
        up; ``stable_seconds`` of uptime resets the count.  ``on_event``
        receives every lifecycle event dict (died / respawned /
        respawn_failed / repoint_failed / gave_up) as it happens.
        """
        if poll_interval <= 0:
            raise NetError("poll_interval must be positive")
        if backoff_base < 0 or backoff_cap < 0:
            raise NetError("backoff must be non-negative")
        if max_restarts < 1:
            raise NetError("max_restarts must be at least 1")
        if stable_seconds < 0:
            raise NetError("stable_seconds must be non-negative")
        self._gateway = gateway
        self._poll_interval = poll_interval
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._max_restarts = max_restarts
        self._stable_seconds = stable_seconds
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._on_event = on_event
        self._lock = threading.Lock()
        self._workers: dict[str, _Supervised] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def manage(
        self,
        process: Any,
        factory: Callable[[], Any],
        name: str | None = None,
    ) -> str:
        """Start watching ``process``; ``factory`` builds its replacement.

        The factory must reproduce the worker's identity: same shard id
        (its ring position) and, for durability, the same checkpoint
        directory.  Returns the supervised name.
        """
        worker_name = name if name is not None else process.shard_id
        with self._lock:
            if worker_name in self._workers:
                raise NetError(
                    f"worker {worker_name!r} is already supervised"
                )
            self._workers[worker_name] = _Supervised(
                worker_name, process, factory, self._clock()
            )
        return worker_name

    def forget(self, name: str) -> None:
        """Stop watching a worker (it was retired deliberately)."""
        with self._lock:
            self._workers.pop(name, None)

    def reset(self, name: str) -> None:
        """Operator override: clear a worker's give-up/backoff state."""
        with self._lock:
            entry = self._workers.get(name)
            if entry is None:
                raise NetError(f"unknown supervised worker {name!r}")
            entry.failures = 0
            entry.given_up = False
            entry.next_attempt = self._clock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run the supervision loop on a daemon thread."""
        if self._thread is not None:
            raise NetError("supervisor already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-net-supervisor", daemon=True
        )
        self._thread.start()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the loop (managed processes are left running)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self._poll_interval):
            try:
                self.check_once()
            except Exception as error:  # never let one pass kill the loop
                self._emit({"event": "supervisor_error", "error": repr(error)})

    # ------------------------------------------------------------------
    # One supervision pass (directly callable in tests)
    # ------------------------------------------------------------------
    def check_once(self, now: float | None = None) -> list[dict[str, Any]]:
        """Inspect every worker once; respawn what's dead and due.

        Returns the lifecycle events of this pass.
        """
        events: list[dict[str, Any]] = []
        if now is None:
            now = self._clock()
        with self._lock:
            entries = list(self._workers.values())
        for entry in entries:
            events.extend(self._check_entry(entry, now))
        return events

    def _check_entry(
        self, entry: _Supervised, now: float
    ) -> list[dict[str, Any]]:
        events: list[dict[str, Any]] = []
        if entry.given_up:
            return events
        process = entry.process
        if process is not None and process.alive:
            if (
                entry.failures
                and now - entry.spawned_at >= self._stable_seconds
            ):
                # Survived the crash window: the loop is broken.
                entry.failures = 0
            return events
        if process is not None:
            # Newly observed death: reap it and schedule the respawn.
            entry.last_exitcode = getattr(process, "exitcode", None)
            join = getattr(process, "join", None)
            if join is not None:
                try:
                    join(0)
                except Exception:
                    pass
            entry.process = None
            entry.failures += 1
            events.append(self._emit({
                "event": "died",
                "worker": entry.name,
                "failures": entry.failures,
                "exitcode": entry.last_exitcode,
            }))
            if entry.failures > self._max_restarts:
                entry.given_up = True
                events.append(self._emit({
                    "event": "gave_up",
                    "worker": entry.name,
                    "failures": entry.failures,
                }))
                return events
            if entry.failures == 1:
                entry.next_attempt = now  # first respawn is immediate
            else:
                entry.next_attempt = now + equal_jitter(
                    self._backoff_base,
                    entry.failures - 2,
                    self._rng,
                    cap=self._backoff_cap,
                )
        if entry.process is None and now >= entry.next_attempt:
            events.extend(self._respawn(entry, now))
        return events

    def _respawn(
        self, entry: _Supervised, now: float
    ) -> list[dict[str, Any]]:
        events: list[dict[str, Any]] = []
        try:
            process = entry.factory()
        except Exception as error:
            entry.failures += 1
            entry.last_error = repr(error)
            events.append(self._emit({
                "event": "respawn_failed",
                "worker": entry.name,
                "failures": entry.failures,
                "error": repr(error),
            }))
            if entry.failures > self._max_restarts:
                entry.given_up = True
                events.append(self._emit({
                    "event": "gave_up",
                    "worker": entry.name,
                    "failures": entry.failures,
                }))
            else:
                entry.next_attempt = now + equal_jitter(
                    self._backoff_base,
                    max(0, entry.failures - 2),
                    self._rng,
                    cap=self._backoff_cap,
                )
            return events
        entry.process = process
        entry.spawned_at = self._clock()
        entry.restarts += 1
        host, port = process.address
        try:
            self._repoint(entry.name, host, port)
        except Exception as error:
            entry.last_error = repr(error)
            events.append(self._emit({
                "event": "repoint_failed",
                "worker": entry.name,
                "address": (host, port),
                "error": repr(error),
            }))
            return events
        entry.last_error = None
        events.append(self._emit({
            "event": "respawned",
            "worker": entry.name,
            "address": (host, port),
            "restarts": entry.restarts,
        }))
        return events

    def _repoint(self, name: str, host: str, port: int) -> None:
        gateway = self._gateway
        if gateway is None:
            return
        core = getattr(gateway, "gateway", None)
        run = getattr(gateway, "run", None)
        if core is not None and callable(run):
            # A GatewayServer: drive its asyncio core via the bridge.
            run(core.set_worker_address(name, host, port))
            run(core.resync_worker(name))
            return
        gateway.set_worker_address(name, host, port)
        resync = getattr(gateway, "resync_worker", None)
        if callable(resync):
            resync(name)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def status(self) -> dict[str, dict[str, Any]]:
        """One dict per supervised worker: liveness and restart state."""
        now = self._clock()
        with self._lock:
            entries = list(self._workers.values())
        view: dict[str, dict[str, Any]] = {}
        for entry in entries:
            process = entry.process
            view[entry.name] = {
                "alive": bool(process is not None and process.alive),
                "address": (
                    tuple(process.address) if process is not None else None
                ),
                "failures": entry.failures,
                "restarts": entry.restarts,
                "given_up": entry.given_up,
                "retry_in": max(0.0, entry.next_attempt - now),
                "last_error": entry.last_error,
                "last_exitcode": entry.last_exitcode,
            }
        return view

    def _emit(self, event: dict[str, Any]) -> dict[str, Any]:
        if self._on_event is not None:
            try:
                self._on_event(dict(event))
            except Exception:
                pass  # a broken listener must not stop supervision
        return event

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._workers)
        return (
            f"FleetSupervisor(workers={count}, "
            f"running={self._thread is not None})"
        )
