"""The sandwiched join estimator: learned in the middle, provable outside.

:class:`SandwichedJoinEstimator` combines three ingredients per join:

1. **Learned estimate** — a served join model under the join's canonical
   model key (see :mod:`repro.joins.spec`), predicting what fraction of
   the *full join result* ``L ⋈ R`` the joint predicate keeps:
   ``|σL ⋈ σR| / |L ⋈ R|``.  That normalisation is load-bearing: a
   join-result tuple carries both sides' attributes, so the fraction is
   a true probability measure over the joint domain (the unfiltered
   join has selectivity exactly 1) — the same density semantics
   QuickSel-family models assume for single tables, which is what lets
   a join model be "just another model key".  The exact full join size
   that scales the fraction back to rows is maintained by the sketches.
   Served through whatever
   :class:`~repro.serving.adapter.SelectivityServing` the caller holds —
   the single service, the sharded cluster, or the remote gateway
   client.
2. **Independence fallback** — the textbook
   ``|L|·|R|·selL·selR / max(V(L.k), V(R.k))`` estimate from the same
   per-table served models, used whenever no join model is registered.
3. **Pessimistic sandwich** — the MCV upper bound from the two
   :class:`~repro.joins.sketch.JoinBoundSketch` objects, plus a
   configurable lower floor.  Whatever the middle says, the final
   estimate is clamped into ``[floor, UB]`` — a bad learned model can
   be *wrong*, but it can never be impossibly large.

Every served estimate records which side won
(:meth:`~repro.serving.stats.ServingStats.record_sandwich`), so the
clamp rate is readable off the ordinary stats surface.

:func:`sandwiched_batch` is the planner's entry point: it folds the
per-table and join-model lookups of *many* joins into one
``estimate_batch_mixed`` burst (one snapshot resolve per key, one fan-out
across shards/workers) and finishes each sandwich locally.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.geometry import Hyperrectangle
from repro.core.predicate import Predicate, TruePredicate
from repro.exceptions import JoinError
from repro.joins.sketch import JoinBoundSketch, pessimistic_upper_bound
from repro.joins.spec import JoinSpec
from repro.serving.adapter import SelectivityServing
from repro.serving.registry import ModelKey
from repro.serving.stats import ServingStats

__all__ = [
    "SandwichedJoinEstimate",
    "SandwichedJoinEstimator",
    "register_join_model",
    "sandwiched_batch",
]


def register_join_model(
    service: SelectivityServing,
    spec: JoinSpec,
    left_domain: Hyperrectangle,
    right_domain: Hyperrectangle,
    config: object | None = None,
) -> ModelKey:
    """Register a fresh QuickSel join model under the join's model key.

    The model's domain is the joint (concatenated) domain; from here on
    it is an ordinary served model — hot-swap, challengers, windowed
    training, shard routing and the wire protocol all apply unchanged.
    ``left_domain``/``right_domain`` follow the spec's side order.
    """
    from repro.core.quicksel import QuickSel

    joint = spec.joint_domain(left_domain, right_domain)
    return service.register_model(spec.model_key, QuickSel(joint, config))


@dataclass(frozen=True)
class SandwichedJoinEstimate:
    """One sandwiched join cardinality and everything that produced it."""

    spec: JoinSpec
    left_rows: float
    right_rows: float
    left_selectivity: float
    right_selectivity: float
    #: Learned-model cardinality before clamping; None without a model.
    learned_rows: float | None
    independence_rows: float
    upper_bound: float
    lower_bound: float
    estimated_rows: float
    #: What produced the pre-clamp middle: "learned" or "independence".
    source: str
    #: Which bound won: "upper", "lower", or None (middle served as-is).
    clamped: str | None

    @property
    def within_bounds(self) -> bool:
        """The served estimate respects the sandwich (always true)."""
        return self.lower_bound <= self.estimated_rows <= self.upper_bound


class SandwichedJoinEstimator:
    """Serve ``|σ(L) ⋈ σ(R)|`` estimates clamped by pessimistic bounds."""

    def __init__(
        self,
        spec: JoinSpec,
        service: SelectivityServing,
        left_sketch: JoinBoundSketch,
        right_sketch: JoinBoundSketch,
        left_dimension: int,
        right_dimension: int,
        left_model: object | None = None,
        right_model: object | None = None,
        lower_floor_rows: float = 0.0,
        stats: ServingStats | None = None,
    ) -> None:
        """``left_*``/``right_*`` follow the spec's side order.

        ``left_model``/``right_model`` name the per-table served models
        (default: the table name itself); they must be registered with
        ``service`` — the independence fallback and the filtered-side
        cardinalities both read them.  ``stats`` defaults to the
        service's own :class:`ServingStats` when it exposes one (the
        local service and cluster do; the remote client records into a
        caller-provided instance or not at all).
        """
        if left_sketch.key != spec.left_key or (
            left_sketch.table != spec.left_table
        ):
            raise JoinError(
                f"left sketch {left_sketch!r} does not cover "
                f"{spec.left_table}.{spec.left_key}"
            )
        if right_sketch.key != spec.right_key or (
            right_sketch.table != spec.right_table
        ):
            raise JoinError(
                f"right sketch {right_sketch!r} does not cover "
                f"{spec.right_table}.{spec.right_key}"
            )
        if left_dimension < 1 or right_dimension < 1:
            raise JoinError("table dimensionalities must be positive")
        if lower_floor_rows < 0:
            raise JoinError("lower_floor_rows must be non-negative")
        self._spec = spec
        self._service = service
        self._left_sketch = left_sketch
        self._right_sketch = right_sketch
        self._left_dimension = left_dimension
        self._right_dimension = right_dimension
        self._left_model = service.key_for(
            left_model if left_model is not None else spec.left_table
        )
        self._right_model = service.key_for(
            right_model if right_model is not None else spec.right_table
        )
        self._lower_floor_rows = float(lower_floor_rows)
        if stats is None:
            stats = getattr(service, "stats", None)
            if not isinstance(stats, ServingStats):
                stats = None
        self._stats = stats
        # None = not yet checked against the service's key list.
        self._join_model_available: bool | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> JoinSpec:
        return self._spec

    @property
    def service(self) -> SelectivityServing:
        return self._service

    @property
    def join_key(self) -> ModelKey:
        """The model key the learned join model serves under."""
        return self._spec.model_key

    @property
    def full_join_size(self) -> float:
        """Exact current ``|L ⋈ R|`` from the sketches (no filters)."""
        return self._left_sketch.join_size_with(self._right_sketch)

    @property
    def has_join_model(self) -> bool:
        """Whether a learned join model is currently registered.

        Checked lazily against the service's key list and cached;
        :meth:`refresh` drops the cache after registrations change.
        """
        if self._join_model_available is None:
            self._join_model_available = (
                self.join_key in tuple(self._service.model_keys())
            )
        return self._join_model_available

    def refresh(self) -> None:
        """Re-check join-model availability on the next estimate."""
        self._join_model_available = None

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def joint_predicate(
        self,
        left_predicate: Predicate | None,
        right_predicate: Predicate | None,
    ) -> Predicate:
        """The two side predicates embedded into the joint domain."""
        return self._spec.joint_predicate(
            left_predicate or TruePredicate(),
            right_predicate or TruePredicate(),
            self._left_dimension,
            self._right_dimension,
        )

    def serving_pairs(
        self,
        left_predicate: Predicate | None,
        right_predicate: Predicate | None,
    ) -> list[tuple[ModelKey, Predicate]]:
        """The ``(model key, predicate)`` pairs one estimate needs.

        Two per-table pairs, plus the joint pair when a join model is
        registered — the building block :func:`sandwiched_batch` packs
        into a single mixed burst.
        """
        left_predicate = left_predicate or TruePredicate()
        right_predicate = right_predicate or TruePredicate()
        pairs = [
            (self._left_model, left_predicate),
            (self._right_model, right_predicate),
        ]
        if self.has_join_model:
            pairs.append(
                (
                    self.join_key,
                    self.joint_predicate(left_predicate, right_predicate),
                )
            )
        return pairs

    def estimate(
        self,
        left_predicate: Predicate | None = None,
        right_predicate: Predicate | None = None,
    ) -> SandwichedJoinEstimate:
        """One sandwiched estimate via one mixed burst against the service."""
        pairs = self.serving_pairs(left_predicate, right_predicate)
        values = self._service.estimate_batch_mixed(pairs)
        join_selectivity = float(values[2]) if len(values) > 2 else None
        return self.finish(float(values[0]), float(values[1]), join_selectivity)

    def finish(
        self,
        left_selectivity: float,
        right_selectivity: float,
        join_selectivity: float | None,
    ) -> SandwichedJoinEstimate:
        """Assemble the sandwich from already-served selectivities.

        Split out of :meth:`estimate` so :func:`sandwiched_batch` can
        serve many joins' lookups in one burst and finish each locally.
        """
        left_total = float(self._left_sketch.total_count)
        right_total = float(self._right_sketch.total_count)
        left_selectivity = min(max(left_selectivity, 0.0), 1.0)
        right_selectivity = min(max(right_selectivity, 0.0), 1.0)
        left_rows = left_selectivity * left_total
        right_rows = right_selectivity * right_total
        upper = pessimistic_upper_bound(
            self._left_sketch, self._right_sketch, left_rows, right_rows
        )
        lower = min(self._lower_floor_rows, upper)

        distinct = max(
            self._left_sketch.distinct_count,
            self._right_sketch.distinct_count,
            1,
        )
        independence_rows = left_rows * right_rows / distinct

        learned_rows = None
        if join_selectivity is not None:
            # The join model predicts the kept fraction of the full join
            # result; the sketches' exact |L ⋈ R| turns it into rows.
            learned_rows = (
                min(max(join_selectivity, 0.0), 1.0) * self.full_join_size
            )
        if learned_rows is not None:
            source, middle = "learned", learned_rows
        else:
            source, middle = "independence", independence_rows

        if middle > upper:
            estimated, clamped = upper, "upper"
        elif middle < lower:
            estimated, clamped = lower, "lower"
        else:
            estimated, clamped = middle, None
        if self._stats is not None:
            self._stats.record_sandwich(source, clamped)
        return SandwichedJoinEstimate(
            spec=self._spec,
            left_rows=left_rows,
            right_rows=right_rows,
            left_selectivity=left_selectivity,
            right_selectivity=right_selectivity,
            learned_rows=learned_rows,
            independence_rows=independence_rows,
            upper_bound=upper,
            lower_bound=lower,
            estimated_rows=float(estimated),
            source=source,
            clamped=clamped,
        )

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def observe(
        self,
        left_predicate: Predicate | None,
        right_predicate: Predicate | None,
        join_selectivity: float,
    ) -> bool:
        """Feed one observed join selectivity to the served join model.

        ``join_selectivity`` is cross-product-normalised
        (``|σL ⋈ σR| / (|L|·|R|)``), exactly what the executor's hash
        join emits; it is re-normalised here against the sketches' exact
        full join size into the kept-fraction-of-``L ⋈ R`` density the
        model learns.  A join whose full result is empty has nothing to
        learn — the observation is dropped (returns False).  Raises
        :class:`JoinError` when no join model is registered — register
        one first (:func:`register_join_model`).
        """
        if not 0.0 <= join_selectivity <= 1.0:
            raise JoinError("join selectivity must be in [0, 1]")
        self.refresh()
        if not self.has_join_model:
            raise JoinError(
                f"no join model registered under {self.join_key}; "
                "register one before observing"
            )
        full = self.full_join_size
        if full <= 0.0:
            return False
        cross = float(
            self._left_sketch.total_count * self._right_sketch.total_count
        )
        kept_fraction = min(join_selectivity * cross / full, 1.0)
        joint = self.joint_predicate(left_predicate, right_predicate)
        return bool(
            self._service.observe(self.join_key, joint, kept_fraction)
        )

    def __repr__(self) -> str:
        return (
            f"SandwichedJoinEstimator({self._spec}, "
            f"learned={self.has_join_model}, "
            f"floor={self._lower_floor_rows})"
        )


def sandwiched_batch(
    requests: Sequence[
        tuple[SandwichedJoinEstimator, Predicate | None, Predicate | None]
    ],
) -> list[SandwichedJoinEstimate]:
    """Serve many joins' sandwiched estimates in one mixed burst.

    Every estimator must sit on the *same* service — that is what lets
    all per-table and join-model lookups travel as a single
    ``estimate_batch_mixed`` call (one snapshot resolve per key; one
    fan-out when the service is a cluster or gateway client).
    """
    if not requests:
        return []
    service = requests[0][0].service
    pairs: list[tuple[ModelKey, Predicate]] = []
    slices: list[tuple[SandwichedJoinEstimator, int, bool]] = []
    for estimator, left_predicate, right_predicate in requests:
        if estimator.service is not service:
            raise JoinError(
                "sandwiched_batch requires all estimators to share one "
                "serving backend"
            )
        request_pairs = estimator.serving_pairs(left_predicate, right_predicate)
        slices.append((estimator, len(pairs), len(request_pairs) == 3))
        pairs.extend(request_pairs)
    values = service.estimate_batch_mixed(pairs)
    estimates = []
    for estimator, start, has_join in slices:
        join_selectivity = float(values[start + 2]) if has_join else None
        estimates.append(
            estimator.finish(
                float(values[start]), float(values[start + 1]), join_selectivity
            )
        )
    return estimates
