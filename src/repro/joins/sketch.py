"""Pessimistic join bounds from per-(table, key) frequency sketches.

A :class:`JoinBoundSketch` tracks one table column's value frequencies:
distinct count, total count, and the most-common-value (MCV) frequency.
From two sketches over the join keys of ``R`` and ``S`` it derives a
*provable* upper bound on the equi-join size — no row of ``R`` can match
more than ``max_frequency(S.key)`` rows of ``S`` and vice versa:

    |R ⋈ S|  ≤  min(|R| · mcf(S.key),  |S| · mcf(R.key))

(the two-relation case of the pessimistic/"postbound" MCV bound).  With
filters applied to either side the bound holds with the *filtered*
cardinalities, since filtering can only lower each side's per-value
frequency.  When both sketches are exact (built from full table data,
the default here), the bound is additionally capped by the exact
unfiltered join size Σ_v f_R(v)·f_S(v), which filtered joins can never
exceed either.

The sketch is deliberately exact rather than probabilistic: the engine's
tables are in-memory numpy arrays, so a value→count dict costs O(distinct)
and keeps the bound *sound*, which is the entire point of the sandwich.
Incremental :meth:`update`/:meth:`remove` keep it in lockstep with table
mutations without rescans.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

import numpy as np

from repro.exceptions import JoinError

__all__ = ["JoinBoundSketch", "pessimistic_upper_bound"]


class JoinBoundSketch:
    """Exact value-frequency sketch for one (table, key column) pair."""

    def __init__(self, table: str, key: str) -> None:
        if not table or not key:
            raise JoinError("sketch table and key must be non-empty")
        self.table = table
        self.key = key
        self._counts: Counter = Counter()
        self._total = 0
        # Bumped on every mutation; pair-wise join-size memos key on it.
        self._version = 0
        self._join_size_cache: dict[tuple[int, int, int], float] = {}

    @classmethod
    def from_table(cls, table: object, key: str) -> "JoinBoundSketch":
        """Build a sketch from an engine table's current rows.

        ``table`` is a :class:`repro.engine.table.Table`; only its
        ``name`` attribute and ``column_values(key)`` are used, so any
        object with that shape works.
        """
        sketch = cls(getattr(table, "name", str(table)), key)
        sketch.update(table.column_values(key))
        return sketch

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def update(self, values: Iterable[object]) -> None:
        """Fold newly inserted key values into the sketch."""
        added = 0
        for value in np.asarray(list(values)).ravel().tolist():
            self._counts[value] += 1
            added += 1
        if added:
            self._total += added
            self._version += 1

    def remove(self, values: Iterable[object]) -> None:
        """Remove deleted rows' key values from the sketch."""
        removed = 0
        for value in np.asarray(list(values)).ravel().tolist():
            count = self._counts.get(value, 0)
            if count <= 0:
                raise JoinError(
                    f"cannot remove {value!r} from sketch "
                    f"{self.table}.{self.key}: not present"
                )
            if count == 1:
                del self._counts[value]
            else:
                self._counts[value] = count - 1
            removed += 1
        if removed:
            self._total -= removed
            self._version += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_count(self) -> int:
        """Rows covered by the sketch (the table's key-column length)."""
        return self._total

    @property
    def distinct_count(self) -> int:
        """Distinct key values currently present."""
        return len(self._counts)

    @property
    def max_frequency(self) -> int:
        """The most-common value's frequency (0 when empty)."""
        if not self._counts:
            return 0
        return max(self._counts.values())

    def most_common(self, k: int = 10) -> list[tuple[object, int]]:
        """The top-``k`` (value, frequency) pairs, most frequent first."""
        if k < 1:
            raise JoinError("k must be at least 1")
        return self._counts.most_common(k)

    def frequency(self, value: object) -> int:
        """One value's frequency (0 when absent)."""
        return self._counts.get(value, 0)

    def join_size_with(self, other: "JoinBoundSketch") -> float:
        """Exact unfiltered equi-join size Σ_v f_self(v) · f_other(v).

        Memoised per (self version, other version) pair; iterates the
        smaller sketch's distinct values.
        """
        cache_key = (id(other), self._version, other._version)
        cached = self._join_size_cache.get(cache_key)
        if cached is not None:
            return cached
        small, large = self._counts, other._counts
        if len(small) > len(large):
            small, large = large, small
        size = float(
            sum(count * large[value] for value, count in small.items()
                if value in large)
        )
        # One live memo per partner sketch is enough; drop stale entries.
        self._join_size_cache = {
            k: v for k, v in self._join_size_cache.items() if k[0] != id(other)
        }
        self._join_size_cache[cache_key] = size
        return size

    def upper_bound_with(
        self,
        other: "JoinBoundSketch",
        self_rows: float | None = None,
        other_rows: float | None = None,
    ) -> float:
        """Provable upper bound on the (optionally filtered) join size.

        ``self_rows``/``other_rows`` are the *filtered* cardinalities of
        each side (estimates or exact); they default to the sketches'
        unfiltered totals.  See :func:`pessimistic_upper_bound`.
        """
        return pessimistic_upper_bound(self, other, self_rows, other_rows)

    def __repr__(self) -> str:
        return (
            f"JoinBoundSketch({self.table}.{self.key}, "
            f"rows={self._total}, distinct={self.distinct_count}, "
            f"mcf={self.max_frequency})"
        )


def pessimistic_upper_bound(
    left: JoinBoundSketch,
    right: JoinBoundSketch,
    left_rows: float | None = None,
    right_rows: float | None = None,
) -> float:
    """MCV-frequency upper bound on ``|σ(L) ⋈ σ(R)|``.

    ``min(left_rows · mcf_R, right_rows · mcf_L)``, additionally capped
    by the exact unfiltered join size (filters only shrink a join).
    ``left_rows``/``right_rows`` are the filtered side cardinalities and
    may be fractional estimates; the bound is only as sound as they are
    pessimistic, so callers who need a hard guarantee pass exact counts.
    """
    if left_rows is None:
        left_rows = float(left.total_count)
    if right_rows is None:
        right_rows = float(right.total_count)
    if left_rows < 0 or right_rows < 0:
        raise JoinError("side cardinalities must be non-negative")
    bound = min(
        left_rows * right.max_frequency,
        right_rows * left.max_frequency,
        left.join_size_with(right),
    )
    return float(max(bound, 0.0))
