"""Wiring between join execution and per-join-key learned models.

:class:`JoinFeedbackLoop` is the join analogue of
:class:`~repro.engine.feedback.FeedbackLoop`: it subscribes to the
executor's join listeners and routes each executed join's observed
cross-product selectivity to the :class:`SandwichedJoinEstimator`
registered for that join key — which forwards it to the served join
model as ordinary ``(joint predicate, selectivity)`` feedback, behind
the same refit policy, windowed training, and challenger mirroring as
any single-table model.

Orientation is handled here: a ``JoinQuery`` may name the sides in
either order; the loop matches it to the registered estimator by the
canonical model key and flips the per-side predicates when needed.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.executor import Executor, JoinExecutionResult
from repro.engine.query import JoinQuery
from repro.exceptions import JoinError
from repro.joins.estimator import SandwichedJoinEstimator
from repro.joins.spec import JoinSpec

__all__ = ["JoinFeedbackLoop"]


def _query_spec(query: JoinQuery) -> JoinSpec:
    return JoinSpec(
        left_table=query.left.table_name,
        left_key=query.left_key,
        right_table=query.right.table_name,
        right_key=query.right_key,
    )


class JoinFeedbackLoop:
    """Routes observed join selectivities to sandwiched estimators."""

    def __init__(self, executor: Executor) -> None:
        self._executor = executor
        # canonical model key string -> registered estimators.
        self._estimators: dict[str, list[SandwichedJoinEstimator]] = {}
        executor.add_join_feedback_listener(self._on_join_feedback)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_estimator(self, estimator: SandwichedJoinEstimator) -> None:
        """Subscribe a sandwiched estimator to its join's executed traffic.

        The estimator must have a served join model to feed (register one
        via :func:`repro.joins.estimator.register_join_model` first).
        """
        if not estimator.has_join_model:
            raise JoinError(
                f"estimator for {estimator.spec} has no served join model; "
                "register one before subscribing it to feedback"
            )
        key = str(estimator.join_key)
        self._estimators.setdefault(key, []).append(estimator)

    def estimators_for(
        self, spec: JoinSpec
    ) -> Sequence[SandwichedJoinEstimator]:
        """Estimators currently subscribed to a join (either orientation)."""
        return tuple(self._estimators.get(str(spec.model_key), ()))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _on_join_feedback(
        self, query: JoinQuery, result: JoinExecutionResult
    ) -> None:
        spec = _query_spec(query)
        estimators = self._estimators.get(str(spec.model_key))
        if not estimators:
            return
        for estimator in estimators:
            left_predicate = query.left.predicate
            right_predicate = query.right.predicate
            if estimator.spec.sides != spec.sides:
                left_predicate, right_predicate = (
                    right_predicate,
                    left_predicate,
                )
            estimator.observe(
                left_predicate, right_predicate, result.join_selectivity
            )
