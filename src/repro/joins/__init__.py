"""Join-aware estimation: learned per-join-key models, pessimistically
sandwiched, served through the ordinary snapshot fleet.

See :mod:`repro.joins.spec` for how a join becomes "just another model
key", :mod:`repro.joins.sketch` for the provable MCV upper bounds,
:mod:`repro.joins.estimator` for the sandwich itself,
:mod:`repro.joins.feedback` for learning from executed joins, and
:mod:`repro.joins.planner` for greedy join-tree ordering off one batch
burst.
"""

from repro.joins.estimator import (
    SandwichedJoinEstimate,
    SandwichedJoinEstimator,
    register_join_model,
    sandwiched_batch,
)
from repro.joins.feedback import JoinFeedbackLoop
from repro.joins.planner import JoinStep, JoinTreePlan, JoinTreePlanner
from repro.joins.sketch import JoinBoundSketch, pessimistic_upper_bound
from repro.joins.spec import (
    JOIN_SEPARATOR,
    JoinSpec,
    join_model_key,
    parse_join_key,
    shift_predicate,
)

__all__ = [
    "JOIN_SEPARATOR",
    "JoinBoundSketch",
    "JoinFeedbackLoop",
    "JoinSpec",
    "JoinStep",
    "JoinTreePlan",
    "JoinTreePlanner",
    "SandwichedJoinEstimate",
    "SandwichedJoinEstimator",
    "join_model_key",
    "parse_join_key",
    "pessimistic_upper_bound",
    "register_join_model",
    "sandwiched_batch",
    "shift_predicate",
]
