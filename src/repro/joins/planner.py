"""Join-tree ordering by sandwiched cardinalities.

:class:`JoinTreePlanner` orders a 3+-table equi-join query greedily
(greedy operator ordering): every join edge's cardinality is estimated
up front — all edges in **one** ``estimate_batch_mixed`` burst via
:func:`~repro.joins.estimator.sandwiched_batch` — and the planner then
repeatedly merges the pair of relations (or partial join results) with
the smallest estimated joined size.  Edges whose joins have learned
models use the sandwiched learned estimate; edges without fall back to
the independence formula, clamped by the same pessimistic bounds —
the fallback the tentpole requires is simply the estimator's own.

Partial-result sizes are propagated multiplicatively: each edge carries
a selectivity factor ``est_rows / (|σL|·|σR|)``, and the size of merging
two clusters is ``size(A) · size(B) · ∏ factor(crossing edges)`` — the
textbook GOO recurrence.  Disconnected clusters merge as cross products
(factor 1), deferred naturally because they are the largest candidates.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.predicate import Predicate
from repro.exceptions import JoinError
from repro.joins.estimator import (
    SandwichedJoinEstimate,
    SandwichedJoinEstimator,
    sandwiched_batch,
)
from repro.joins.spec import JoinSpec

__all__ = ["JoinStep", "JoinTreePlan", "JoinTreePlanner"]


@dataclass(frozen=True)
class JoinStep:
    """One merge in the greedy join order.

    ``specs`` lists the join edges this merge applies (empty for a pure
    cross product between disconnected clusters).
    """

    left_tables: tuple[str, ...]
    right_tables: tuple[str, ...]
    specs: tuple[JoinSpec, ...]
    estimated_rows: float

    @property
    def joined_tables(self) -> tuple[str, ...]:
        return self.left_tables + self.right_tables

    @property
    def is_cross_product(self) -> bool:
        return not self.specs


@dataclass(frozen=True)
class JoinTreePlan:
    """A full greedy join order plus the edge estimates that drove it."""

    steps: tuple[JoinStep, ...]
    edge_estimates: tuple[tuple[JoinSpec, SandwichedJoinEstimate], ...]
    estimated_rows: float

    @property
    def join_order(self) -> tuple[str, ...]:
        """Tables in the order the plan folds them in.

        A later step can introduce a base table on *either* side of the
        merge (its left cluster need not contain earlier steps' tables),
        so both sides are walked.
        """
        order: list[str] = []
        for step in self.steps:
            order.extend(
                table for table in step.joined_tables if table not in order
            )
        return tuple(order)


class JoinTreePlanner:
    """Greedy operator ordering over sandwiched join estimates."""

    def __init__(self, estimators: Sequence[SandwichedJoinEstimator]) -> None:
        """``estimators`` are the query's join edges, one per join key pair.

        All must share one serving backend so the planning burst is a
        single mixed batch.  Two edges over the same canonical join are
        rejected — the graph would double-count their selectivity.
        """
        if not estimators:
            raise JoinError("a join tree needs at least one join edge")
        service = estimators[0].service
        seen: set[str] = set()
        for estimator in estimators:
            if estimator.service is not service:
                raise JoinError(
                    "all join edges must share one serving backend"
                )
            key = str(estimator.join_key)
            if key in seen:
                raise JoinError(f"duplicate join edge {estimator.spec}")
            seen.add(key)
        self._estimators = tuple(estimators)
        self._tables = tuple(
            dict.fromkeys(
                table
                for estimator in estimators
                for table in estimator.spec.tables
            )
        )

    @property
    def tables(self) -> tuple[str, ...]:
        """Every table named by some join edge."""
        return self._tables

    def plan(
        self, predicates: Mapping[str, Predicate] | None = None
    ) -> JoinTreePlan:
        """Order the join tree for the given per-table filter predicates.

        ``predicates`` maps table name to its local filter (missing
        tables are unfiltered).  Issues exactly one
        ``estimate_batch_mixed`` burst for every edge's per-table and
        join-model lookups, then runs greedy ordering on the results.
        """
        predicates = predicates or {}
        for table in predicates:
            if table not in self._tables:
                raise JoinError(
                    f"predicate for {table!r} matches no join edge"
                )
        requests = [
            (
                estimator,
                predicates.get(estimator.spec.left_table),
                predicates.get(estimator.spec.right_table),
            )
            for estimator in self._estimators
        ]
        estimates = sandwiched_batch(requests)

        # Filtered base-table sizes: every edge estimate reports its two
        # sides' cardinalities off the same served per-table models, so
        # any incident edge's number is the table's number.
        sizes: dict[frozenset[str], float] = {}
        table_rows: dict[str, float] = {}
        factors: list[tuple[frozenset[str], JoinSpec, float]] = []
        for estimator, estimate in zip(self._estimators, estimates):
            spec = estimator.spec
            table_rows.setdefault(spec.left_table, estimate.left_rows)
            table_rows.setdefault(spec.right_table, estimate.right_rows)
            cross = estimate.left_rows * estimate.right_rows
            factor = estimate.estimated_rows / cross if cross > 0 else 0.0
            factors.append(
                (frozenset((spec.left_table, spec.right_table)), spec, factor)
            )
        clusters: list[frozenset[str]] = [
            frozenset((table,)) for table in self._tables
        ]
        for cluster in clusters:
            sizes[cluster] = table_rows[next(iter(cluster))]
        # Deterministic insertion order for tie-breaking: first-listed
        # tables merge first when candidate sizes are equal.
        positions = {table: index for index, table in enumerate(self._tables)}

        steps: list[JoinStep] = []
        while len(clusters) > 1:
            best: tuple[float, int, int] | None = None
            for i in range(len(clusters)):
                for j in range(i + 1, len(clusters)):
                    size = sizes[clusters[i]] * sizes[clusters[j]]
                    for edge, _, factor in factors:
                        if (
                            edge & clusters[i]
                            and edge & clusters[j]
                            and edge <= clusters[i] | clusters[j]
                        ):
                            size *= factor
                    if best is None or size < best[0]:
                        best = (size, i, j)
            assert best is not None
            size, i, j = best
            left, right = clusters[i], clusters[j]
            merged = left | right
            crossing = tuple(
                spec
                for edge, spec, _ in factors
                if edge & left and edge & right
            )
            order = lambda cluster: tuple(  # noqa: E731 - local sort helper
                sorted(cluster, key=positions.__getitem__)
            )
            steps.append(
                JoinStep(
                    left_tables=order(left),
                    right_tables=order(right),
                    specs=crossing,
                    estimated_rows=float(size),
                )
            )
            clusters = [
                cluster
                for index, cluster in enumerate(clusters)
                if index not in (i, j)
            ]
            clusters.append(merged)
            sizes[merged] = size
        final = steps[-1].estimated_rows if steps else sizes[clusters[0]]
        return JoinTreePlan(
            steps=tuple(steps),
            edge_estimates=tuple(
                (estimator.spec, estimate)
                for estimator, estimate in zip(self._estimators, estimates)
            ),
            estimated_rows=float(final),
        )

    def __repr__(self) -> str:
        return (
            f"JoinTreePlanner(tables={len(self._tables)}, "
            f"edges={len(self._estimators)})"
        )
