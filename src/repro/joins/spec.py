"""Join-model identity: keys, joint domains, and joint predicates.

A learned join model covers one equi-join ``left.key = right.key``.  Its
serving identity is an ordinary :class:`~repro.serving.registry.ModelKey`
whose table component spells the join — ``"orders.user_id⋈users.id"`` —
so every layer built for single-table models (versioned snapshots, A/B
challengers, shard routing, the wire protocol) serves join models with
zero new surface: a join key is just another model key.

Two conventions make that possible:

* **Canonical side order.**  ``R ⋈ S`` and ``S ⋈ R`` are the same join,
  so the key string (and the joint domain's dimension layout) always
  lists the lexicographically smaller ``(table, key)`` side first.  A
  :class:`JoinSpec` remembers the caller's orientation and maps
  predicates onto the canonical layout internally.
* **Joint predicates.**  The model's domain is the concatenation of the
  two tables' domains (canonical-left dimensions first).  A pair of
  per-table predicates becomes one predicate over that joint domain by
  shifting the right side's dimension indices up by the left side's
  dimensionality (:func:`shift_predicate`); the observed join
  selectivity ``|σ(L) ⋈ σ(R)| / (|L|·|R|)`` is then ordinary
  ``(predicate, selectivity)`` feedback any QuickSel-family backend can
  learn from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.core.predicate import (
    BoxPredicate,
    Conjunction,
    Constraint,
    Disjunction,
    EqualityConstraint,
    Negation,
    Predicate,
    RangeConstraint,
    TruePredicate,
)
from repro.exceptions import JoinError
from repro.serving.registry import ModelKey

__all__ = [
    "JOIN_SEPARATOR",
    "JoinSpec",
    "join_model_key",
    "parse_join_key",
    "shift_predicate",
]

#: Separator between the two sides of a join key's table component.
JOIN_SEPARATOR = "⋈"


def join_model_key(
    left_table: str, left_key: str, right_table: str, right_key: str
) -> ModelKey:
    """The canonical :class:`ModelKey` naming an equi-join's learned model."""
    left, right = sorted(((left_table, left_key), (right_table, right_key)))
    table = (
        f"{left[0]}.{left[1]}{JOIN_SEPARATOR}{right[0]}.{right[1]}"
    )
    return ModelKey(table=table)


def parse_join_key(key: ModelKey | str) -> "JoinSpec":
    """Recover the :class:`JoinSpec` a join model key names.

    The inverse of :func:`join_model_key` for keys it produced: each side
    is split on its *last* ``.``, so table names may themselves contain
    dots (column names may not).
    """
    table = key.table if isinstance(key, ModelKey) else str(key)
    left_part, separator, right_part = table.partition(JOIN_SEPARATOR)
    if not separator:
        raise JoinError(f"{table!r} is not a join model key")
    sides = []
    for part in (left_part, right_part):
        table_name, dot, column = part.rpartition(".")
        if not dot or not table_name or not column:
            raise JoinError(f"malformed join key side {part!r} in {table!r}")
        sides.append((table_name, column))
    return JoinSpec(
        left_table=sides[0][0],
        left_key=sides[0][1],
        right_table=sides[1][0],
        right_key=sides[1][1],
    )


def _shift_constraint(constraint: Constraint, offset: int) -> Constraint:
    if isinstance(constraint, RangeConstraint):
        return RangeConstraint(
            constraint.dim + offset, constraint.low, constraint.high
        )
    if isinstance(constraint, EqualityConstraint):
        return EqualityConstraint(
            constraint.dim + offset, constraint.value, constraint.width
        )
    raise JoinError(
        f"cannot shift constraint type {type(constraint).__name__}; "
        "join predicates support range and equality constraints"
    )


def shift_predicate(predicate: Predicate, offset: int) -> Predicate:
    """Rewrite a predicate's dimension indices up by ``offset``.

    This is how a per-table predicate is embedded into a joint
    (concatenated) domain.  Supports the whole engine predicate algebra
    (box, and/or/not, true); raw geometry
    (:class:`~repro.core.geometry.Hyperrectangle`/regions) has no
    dimension-sparse representation to shift and is rejected.
    """
    if offset < 0:
        raise JoinError("dimension offset must be non-negative")
    if isinstance(predicate, TruePredicate):
        return predicate
    if offset == 0:
        return predicate
    if isinstance(predicate, BoxPredicate):
        return BoxPredicate(
            [_shift_constraint(c, offset) for c in predicate.constraints]
        )
    if isinstance(predicate, Conjunction):
        return Conjunction(
            [shift_predicate(child, offset) for child in predicate.children]
        )
    if isinstance(predicate, Disjunction):
        return Disjunction(
            [shift_predicate(child, offset) for child in predicate.children]
        )
    if isinstance(predicate, Negation):
        return Negation(shift_predicate(predicate.child, offset))
    raise JoinError(
        f"cannot embed predicate type {type(predicate).__name__} into a "
        "joint join domain"
    )


@dataclass(frozen=True)
class JoinSpec:
    """One equi-join ``left_table.left_key = right_table.right_key``.

    The spec keeps the caller's side order (so engine code reads
    naturally); :attr:`model_key` and the joint domain/predicate layout
    are canonicalised internally, so a spec and its flipped twin name
    and train the *same* served model.
    """

    left_table: str
    left_key: str
    right_table: str
    right_key: str

    def __post_init__(self) -> None:
        for name in (
            self.left_table,
            self.left_key,
            self.right_table,
            self.right_key,
        ):
            if not name:
                raise JoinError("join spec tables and keys must be non-empty")
            if JOIN_SEPARATOR in name:
                raise JoinError(
                    f"{name!r} must not contain the join separator "
                    f"{JOIN_SEPARATOR!r}"
                )

    # ------------------------------------------------------------------
    # Orientation
    # ------------------------------------------------------------------
    @property
    def sides(self) -> tuple[tuple[str, str], tuple[str, str]]:
        """``((left_table, left_key), (right_table, right_key))`` as given."""
        return (
            (self.left_table, self.left_key),
            (self.right_table, self.right_key),
        )

    @property
    def is_canonical(self) -> bool:
        """True when the caller's order already is the canonical order."""
        return (self.left_table, self.left_key) <= (
            self.right_table,
            self.right_key,
        )

    @property
    def tables(self) -> tuple[str, str]:
        """The two table names, caller order."""
        return (self.left_table, self.right_table)

    def flipped(self) -> "JoinSpec":
        """The same join with the sides swapped."""
        return JoinSpec(
            left_table=self.right_table,
            left_key=self.right_key,
            right_table=self.left_table,
            right_key=self.left_key,
        )

    def matches(self, other: "JoinSpec") -> bool:
        """True when ``other`` names the same join (either orientation)."""
        return self.model_key == other.model_key

    # ------------------------------------------------------------------
    # Serving identity
    # ------------------------------------------------------------------
    @property
    def model_key(self) -> ModelKey:
        """The canonical model key this join's learned model serves under."""
        return join_model_key(
            self.left_table, self.left_key, self.right_table, self.right_key
        )

    # ------------------------------------------------------------------
    # Joint-domain embedding
    # ------------------------------------------------------------------
    def joint_domain(
        self, left_domain: Hyperrectangle, right_domain: Hyperrectangle
    ) -> Hyperrectangle:
        """The concatenated domain the join model is trained over.

        ``left_domain``/``right_domain`` follow the *spec's* side order;
        the result lists the canonical-left side's dimensions first.
        """
        first, second = left_domain, right_domain
        if not self.is_canonical:
            first, second = second, first
        return Hyperrectangle(
            np.vstack([first.bounds, second.bounds])
        )

    def joint_predicate(
        self,
        left_predicate: Predicate,
        right_predicate: Predicate,
        left_dimension: int,
        right_dimension: int,
    ) -> Predicate:
        """Embed two per-table predicates into the joint domain.

        Predicates and dimensions follow the spec's side order; the
        embedding follows the canonical layout.  Two box predicates
        merge into a single :class:`BoxPredicate` (one cacheable box,
        served through the vectorised batch path); anything else becomes
        a conjunction of the shifted parts.
        """
        first, first_dim = left_predicate, left_dimension
        second = right_predicate
        if not self.is_canonical:
            first, first_dim = right_predicate, right_dimension
            second = left_predicate
        shifted = shift_predicate(second, first_dim)
        if isinstance(first, TruePredicate):
            return shifted
        if isinstance(shifted, TruePredicate):
            return first
        if isinstance(first, BoxPredicate) and isinstance(
            shifted, BoxPredicate
        ):
            return BoxPredicate(first.constraints + shifted.constraints)
        return Conjunction([first, shifted])

    def __str__(self) -> str:
        return (
            f"{self.left_table}.{self.left_key} {JOIN_SEPARATOR} "
            f"{self.right_table}.{self.right_key}"
        )
