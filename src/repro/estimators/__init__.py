"""Baseline selectivity estimators from the paper's evaluation (Section 5.1).

Query-driven:  :class:`~repro.estimators.stholes.STHoles`,
:class:`~repro.estimators.isomer.Isomer`,
:class:`~repro.estimators.isomer_qp.IsomerQP`,
:class:`~repro.estimators.query_model.QueryModel`
(plus :class:`repro.core.quicksel.QuickSel` itself, which implements the
same interface).

Scan-based: :class:`~repro.estimators.auto_hist.AutoHist`,
:class:`~repro.estimators.auto_sample.AutoSample`, and the
:class:`~repro.estimators.kde.KDEEstimator` extension.
"""

from repro.estimators.auto_hist import AutoHist
from repro.estimators.auto_sample import AutoSample
from repro.estimators.backend import (
    QueryDrivenBackend,
    ScanBackend,
    ServableModel,
    TrainableBackend,
    as_backend,
)
from repro.estimators.base import (
    QueryDrivenEstimator,
    ScanBasedEstimator,
    SelectivityEstimator,
    as_region,
)
from repro.estimators.buckets import Bucket, BucketSet, drill
from repro.estimators.isomer import Isomer
from repro.estimators.isomer_qp import IsomerQP
from repro.estimators.kde import KDEEstimator
from repro.estimators.query_model import QueryModel
from repro.estimators.registry import (
    QUERY_DRIVEN_ESTIMATORS,
    SCAN_BASED_ESTIMATORS,
    make_query_driven,
    make_scan_based,
)
from repro.estimators.stholes import STHoles

__all__ = [
    "SelectivityEstimator",
    "QueryDrivenEstimator",
    "ScanBasedEstimator",
    "TrainableBackend",
    "ServableModel",
    "QueryDrivenBackend",
    "ScanBackend",
    "as_backend",
    "as_region",
    "Bucket",
    "BucketSet",
    "drill",
    "STHoles",
    "Isomer",
    "IsomerQP",
    "QueryModel",
    "AutoHist",
    "AutoSample",
    "KDEEstimator",
    "QUERY_DRIVEN_ESTIMATORS",
    "SCAN_BASED_ESTIMATORS",
    "make_query_driven",
    "make_scan_based",
]
