"""A small factory registry for the estimators used in the evaluation.

The experiment harness refers to estimators by name ("QuickSel",
"ISOMER", ...), mirroring the method labels used in the paper's tables
and figures.  The registry centralises construction so experiments and
examples build estimators consistently.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.config import QuickSelConfig
from repro.core.geometry import Hyperrectangle
from repro.core.quicksel import QuickSel
from repro.estimators.auto_hist import AutoHist
from repro.estimators.auto_sample import AutoSample
from repro.estimators.base import DataSource, SelectivityEstimator
from repro.estimators.isomer import Isomer
from repro.estimators.isomer_qp import IsomerQP
from repro.estimators.kde import KDEEstimator
from repro.estimators.query_model import QueryModel
from repro.estimators.stholes import STHoles
from repro.exceptions import EstimatorError

__all__ = [
    "QUERY_DRIVEN_ESTIMATORS",
    "SCAN_BASED_ESTIMATORS",
    "make_query_driven",
    "make_scan_based",
]

QUERY_DRIVEN_ESTIMATORS: dict[str, Callable[..., SelectivityEstimator]] = {
    # By-name construction mirrors the paper's method labels, so it pins
    # the paper's from-scratch training pipeline (the production default
    # is incremental; see experiments.harness.paper_config).  Pass an
    # explicit config to override.
    "QuickSel": lambda domain, **kw: QuickSel(
        domain,
        config=kw.get("config", QuickSelConfig(incremental_training=False)),
    ),
    "STHoles": lambda domain, **kw: STHoles(
        domain, max_buckets=kw.get("max_buckets", 1000)
    ),
    "ISOMER": lambda domain, **kw: Isomer(
        domain,
        max_queries=kw.get("max_queries"),
        max_buckets=kw.get("max_buckets", 200_000),
    ),
    "ISOMER+QP": lambda domain, **kw: IsomerQP(
        domain, max_buckets=kw.get("max_buckets", 200_000)
    ),
    "QueryModel": lambda domain, **kw: QueryModel(
        domain, bandwidth=kw.get("bandwidth", 0.1)
    ),
}

SCAN_BASED_ESTIMATORS: dict[str, Callable[..., SelectivityEstimator]] = {
    "AutoHist": lambda domain, data_source, **kw: AutoHist(
        domain,
        data_source,
        bucket_budget=kw.get("bucket_budget", 100),
        update_threshold=kw.get("update_threshold", 0.2),
    ),
    "AutoSample": lambda domain, data_source, **kw: AutoSample(
        domain,
        data_source,
        sample_size=kw.get("sample_size", 100),
        update_threshold=kw.get("update_threshold", 0.1),
    ),
    "KDE": lambda domain, data_source, **kw: KDEEstimator(
        domain,
        data_source,
        sample_size=kw.get("sample_size", 1000),
    ),
}


def make_query_driven(
    name: str, domain: Hyperrectangle, **kwargs
) -> SelectivityEstimator:
    """Construct a query-driven estimator by its paper name."""
    try:
        factory = QUERY_DRIVEN_ESTIMATORS[name]
    except KeyError as error:
        raise EstimatorError(
            f"unknown query-driven estimator {name!r}; "
            f"available: {sorted(QUERY_DRIVEN_ESTIMATORS)}"
        ) from error
    return factory(domain, **kwargs)


def make_scan_based(
    name: str, domain: Hyperrectangle, data_source: DataSource, **kwargs
) -> SelectivityEstimator:
    """Construct a scan-based estimator by its paper name."""
    try:
        factory = SCAN_BASED_ESTIMATORS[name]
    except KeyError as error:
        raise EstimatorError(
            f"unknown scan-based estimator {name!r}; "
            f"available: {sorted(SCAN_BASED_ESTIMATORS)}"
        ) from error
    return factory(domain, data_source, **kwargs)
