"""AutoSample: periodically-refreshed uniform row sample.

The paper's second scan-based baseline (Section 5.1): a simple random
sample of rows is drawn from the table, and the selectivity estimate for
a predicate is the fraction of sampled rows that satisfy it.  Like
AutoHist the sample is refreshed automatically once more than a threshold
fraction of rows (10 % by default, per the paper) has been modified since
the last refresh.
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.estimators.base import DataSource, PredicateLike, ScanBasedEstimator
from repro.exceptions import EstimatorError

__all__ = ["AutoSample"]


class AutoSample(ScanBasedEstimator):
    """Uniform random-sample estimator with automatic refresh."""

    name = "AutoSample"

    def __init__(
        self,
        domain: Hyperrectangle,
        data_source: DataSource,
        sample_size: int = 100,
        update_threshold: float = 0.1,
        random_seed: int | None = 0,
    ) -> None:
        super().__init__(domain, data_source, update_threshold=update_threshold)
        if sample_size < 1:
            raise EstimatorError("sample_size must be >= 1")
        self._sample_size = sample_size
        self._rng = np.random.default_rng(random_seed)
        self._sample: np.ndarray | None = None

    # ------------------------------------------------------------------
    # SelectivityEstimator interface
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Each sampled row counts as one stored parameter vector."""
        return 0 if self._sample is None else int(self._sample.shape[0])

    @property
    def sample(self) -> np.ndarray | None:
        """The current sample (None before the first refresh)."""
        return self._sample

    def estimate(self, predicate: PredicateLike) -> float:
        if self._sample is None:
            raise EstimatorError(
                "AutoSample.refresh() must be called before estimating"
            )
        if self._sample.shape[0] == 0:
            return 0.0
        region = self._region(predicate)
        if region.is_empty:
            return 0.0
        inside = region.contains_points(self._sample)
        return float(inside.mean())

    # ------------------------------------------------------------------
    # ScanBasedEstimator interface
    # ------------------------------------------------------------------
    def _build(self, data: np.ndarray) -> None:
        row_count = data.shape[0]
        if row_count == 0:
            self._sample = data.copy()
            return
        if row_count <= self._sample_size:
            self._sample = data.copy()
            return
        picked = self._rng.choice(row_count, size=self._sample_size, replace=False)
        self._sample = data[picked].copy()

    def __repr__(self) -> str:
        return (
            f"AutoSample(sample={self.parameter_count}, "
            f"refreshes={self.refresh_count})"
        )
