"""Common interfaces for all selectivity estimators in the evaluation.

The paper compares QuickSel against two families of estimators:

* **query-driven** estimators, which never look at the data and learn only
  from ``(predicate, true selectivity)`` feedback
  (:class:`QueryDrivenEstimator`), and
* **scan-based** estimators, which periodically rebuild statistics by
  scanning the data and refresh them when enough of the table has changed
  (:class:`ScanBasedEstimator`).

Both expose the same :meth:`SelectivityEstimator.estimate` surface plus a
``parameter_count`` so the harness can reproduce the model-size analyses
of Figure 4 and the space-budget comparison of Figure 5.
"""

from __future__ import annotations

import abc
import copy
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.core.predicate import Predicate, as_region
from repro.core.region import Region
from repro.exceptions import EstimatorError

__all__ = [
    "PredicateLike",
    "DataSource",
    "SelectivityEstimator",
    "QueryDrivenEstimator",
    "ScanBasedEstimator",
    "as_region",  # canonical home: repro.core.predicate; re-exported
]

PredicateLike = Predicate | Hyperrectangle | Region
DataSource = Callable[[], np.ndarray]


class SelectivityEstimator(abc.ABC):
    """Anything that can estimate the selectivity of a predicate."""

    #: Human-readable estimator name used in experiment reports.
    name: str = "estimator"

    def __init__(self, domain: Hyperrectangle) -> None:
        self._domain = domain

    @property
    def domain(self) -> Hyperrectangle:
        """The data domain ``B_0`` this estimator works over."""
        return self._domain

    @property
    @abc.abstractmethod
    def parameter_count(self) -> int:
        """Number of model parameters currently held by the estimator."""

    @abc.abstractmethod
    def estimate(self, predicate: PredicateLike) -> float:
        """Return the estimated selectivity of ``predicate`` in ``[0, 1]``."""

    def estimate_many(self, predicates: Sequence[PredicateLike]) -> np.ndarray:
        """Estimate a batch of predicates; elementwise equal to :meth:`estimate`.

        The default simply loops, so every baseline supports the batch
        API of the serving layer; estimators with a vectorised path
        (:meth:`repro.core.quicksel.QuickSel.estimate_many`) override it.
        """
        return np.array([self.estimate(predicate) for predicate in predicates])

    def frozen_copy(self) -> "SelectivityEstimator":
        """An immutable deep copy adequate for estimation.

        This is what the serving layer publishes as a snapshot: it must
        answer ``estimate``/``estimate_many`` identically to the live
        estimator's current state, and is never trained or refreshed.
        Subclasses whose *estimates* do not depend on some bulky
        training-only state (replay history, data sources) override
        this to exclude it, so snapshot cost tracks model size rather
        than lifetime feedback.
        """
        return copy.deepcopy(self)

    def _region(self, predicate: PredicateLike) -> Region:
        return as_region(predicate, self._domain)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(parameters={self.parameter_count})"


class QueryDrivenEstimator(SelectivityEstimator):
    """Estimators that learn only from observed query feedback."""

    @abc.abstractmethod
    def observe(self, predicate: PredicateLike, selectivity: float) -> None:
        """Record one piece of ``(predicate, true selectivity)`` feedback."""

    def observe_many(
        self, feedback: Sequence[tuple[PredicateLike, float]]
    ) -> None:
        """Record a batch of feedback pairs in order."""
        for predicate, selectivity in feedback:
            self.observe(predicate, selectivity)

    @property
    def observed_count(self) -> int:
        """Number of queries observed so far (subclasses may override)."""
        return getattr(self, "_observed_count", 0)


class ScanBasedEstimator(SelectivityEstimator):
    """Estimators that build statistics by scanning the data.

    Subclasses receive a ``data_source`` callable that returns the current
    table contents as an ``(N, d)`` float array.  They rebuild their
    statistics on :meth:`refresh`, and :meth:`notify_modified` implements
    the automatic-update rule (SQL Server's AUTO_UPDATE_STATISTICS
    behaviour the paper mimics): once more than ``update_threshold`` of
    the rows present at the last refresh have been modified, the
    statistics are rebuilt.
    """

    def __init__(
        self,
        domain: Hyperrectangle,
        data_source: DataSource,
        update_threshold: float = 0.2,
    ) -> None:
        super().__init__(domain)
        if not (0.0 < update_threshold <= 1.0):
            raise EstimatorError("update_threshold must be in (0, 1]")
        self._data_source = data_source
        self._update_threshold = update_threshold
        self._rows_at_refresh = 0
        self._modified_since_refresh = 0
        self._refresh_count = 0

    @property
    def refresh_count(self) -> int:
        """How many times the statistics have been rebuilt."""
        return self._refresh_count

    @property
    def update_threshold(self) -> float:
        """Fraction of modified rows that triggers an automatic rebuild."""
        return self._update_threshold

    def refresh(self) -> None:
        """Rebuild statistics from the current data (a full scan)."""
        data = np.asarray(self._data_source(), dtype=float)
        if data.ndim != 2 or data.shape[1] != self._domain.dimension:
            raise EstimatorError(
                "data source must return an (N, d) array matching the domain"
            )
        self._build(data)
        self._rows_at_refresh = data.shape[0]
        self._modified_since_refresh = 0
        self._refresh_count += 1

    def notify_modified(self, row_count: int) -> bool:
        """Report that ``row_count`` rows were inserted/updated/deleted.

        Returns True if the notification triggered an automatic refresh.
        """
        if row_count < 0:
            raise EstimatorError("row_count must be non-negative")
        self._modified_since_refresh += row_count
        baseline = max(self._rows_at_refresh, 1)
        if self._modified_since_refresh > self._update_threshold * baseline:
            self.refresh()
            return True
        return False

    def frozen_copy(self) -> "ScanBasedEstimator":
        """Deep copy with the data source detached.

        A bound-method (or closure) data source would drag a duplicate
        of the entire dataset into the copy; frozen statistics never
        rescan, so the copy gets a stub source that raises instead.
        """
        source = self._data_source
        self._data_source = _frozen_data_source
        try:
            frozen = copy.deepcopy(self)
        finally:
            self._data_source = source
        return frozen

    @abc.abstractmethod
    def _build(self, data: np.ndarray) -> None:
        """Rebuild internal statistics from a full copy of the data."""


def _frozen_data_source() -> np.ndarray:
    """Placeholder data source installed on frozen scan-estimator copies."""
    raise EstimatorError(
        "a frozen scan-estimator snapshot has no data source; "
        "refresh the live backend, not the published copy"
    )
