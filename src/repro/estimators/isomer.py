"""ISOMER: max-entropy query-driven histogram (Srivastava et al., ICDE 2006).

ISOMER combines STHoles-style bucket creation with a *global* refit: the
bucket frequencies are recomputed after every observed query so that the
histogram is the maximum-entropy distribution consistent with **all**
observed selectivities (not just the latest one).  The optimisation is
solved with iterative scaling, which requires every bucket to be fully
inside or fully outside every predicate — exactly what the drilling step
guarantees and what makes the bucket count explode as queries accumulate
(Section 2.3, Limitation 1).

This class is the state-of-the-art comparator of the paper's evaluation
(Table 3, Figure 3, Figure 4).  ``max_queries`` implements the query
pruning the paper mentions real deployments need: once the limit is hit,
the oldest observed queries stop contributing constraints (they remain
reflected in the bucket boundaries).
"""

from __future__ import annotations

from repro.core.geometry import Hyperrectangle
from repro.core.region import Region
from repro.estimators.base import PredicateLike, QueryDrivenEstimator
from repro.estimators.buckets import BucketBatchEstimation, BucketSet, drill
from repro.exceptions import EstimatorError
from repro.solvers.iterative_scaling import solve_iterative_scaling

__all__ = ["Isomer"]


class Isomer(BucketBatchEstimation, QueryDrivenEstimator):
    """Max-entropy query-driven histogram trained with iterative scaling."""

    name = "ISOMER"

    def __init__(
        self,
        domain: Hyperrectangle,
        max_queries: int | None = None,
        max_buckets: int | None = 200_000,
        scaling_iterations: int = 50,
        scaling_tolerance: float = 1.0e-5,
    ) -> None:
        super().__init__(domain)
        if max_queries is not None and max_queries < 1:
            raise EstimatorError("max_queries must be >= 1 when set")
        if max_buckets is not None and max_buckets < 1:
            raise EstimatorError("max_buckets must be >= 1 when set")
        self._buckets = BucketSet.initial(domain)
        self._queries: list[tuple[Region, float]] = []
        self._max_queries = max_queries
        self._max_buckets = max_buckets
        self._scaling_iterations = scaling_iterations
        self._scaling_tolerance = scaling_tolerance
        self._observed_count = 0
        self._last_iterations = 0

    # ------------------------------------------------------------------
    # SelectivityEstimator interface
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """One frequency parameter per bucket."""
        return len(self._buckets)

    @property
    def bucket_count(self) -> int:
        """Number of histogram buckets."""
        return len(self._buckets)

    @property
    def last_iterations(self) -> int:
        """Iterative-scaling sweeps used by the most recent refit."""
        return self._last_iterations

    def estimate(self, predicate: PredicateLike) -> float:
        region = self._region(predicate)
        raw = self._buckets.estimate_region(region)
        return float(min(max(raw, 0.0), 1.0))

    def frozen_copy(self) -> "Isomer":
        """Deep copy without the observed-query replay history.

        Estimates read only the bucket frequencies; ``_queries`` exists
        to re-run iterative scaling on the *live* estimator.  Excluding
        it keeps a published snapshot sized to the histogram instead of
        the lifetime feedback stream.
        """
        queries, self._queries = self._queries, []
        try:
            return super().frozen_copy()
        finally:
            self._queries = queries

    def observe(self, predicate: PredicateLike, selectivity: float) -> None:
        if not (0.0 <= selectivity <= 1.0):
            raise EstimatorError("selectivity must be in [0, 1]")
        region = self._region(predicate)
        self._observed_count += 1
        if region.is_empty:
            return
        if self._max_buckets is not None and len(self._buckets) >= self._max_buckets:
            # Bucket budget exhausted: keep the constraint but stop
            # refining boundaries (mirrors the feasibility limit the paper
            # describes for max-entropy histograms).
            self._queries.append((region, selectivity))
        else:
            drill(self._buckets, region.boxes)
            self._queries.append((region, selectivity))
        self._refit()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _active_queries(self) -> list[tuple[Region, float]]:
        if self._max_queries is None or len(self._queries) <= self._max_queries:
            return self._queries
        return self._queries[-self._max_queries :]

    def _refit(self) -> None:
        """Recompute all bucket frequencies by iterative scaling."""
        active = self._active_queries()
        regions = [region for region, _ in active]
        selectivities = [selectivity for _, selectivity in active]
        membership = self._buckets.membership_matrix(regions)
        result = solve_iterative_scaling(
            membership,
            selectivities,
            self._buckets.volumes,
            max_iterations=self._scaling_iterations,
            tolerance=self._scaling_tolerance,
        )
        self._buckets.set_frequencies(result.frequencies)
        self._last_iterations = result.iterations

    def __repr__(self) -> str:
        return (
            f"Isomer(buckets={self.bucket_count}, observed={self._observed_count})"
        )
