"""The serving stack's trainer protocol: any estimator behind a snapshot.

PR 1–3 hard-wired the serving and cluster layers to
:class:`~repro.core.quicksel.QuickSel`: the registry published
:class:`~repro.core.mixture.UniformMixtureModel`\\ s, the service owned a
``QuickSel`` trainer per key, and shard migration handed ``QuickSel``
objects around.  This module is the seam that removes that coupling:

* :class:`ServableModel` is the *read* surface a published snapshot
  needs — ``estimate_many`` (batch, elementwise equal to the scalar
  estimate) and ``parameter_count``.  Models that additionally expose
  ``estimate_from_bounds`` (raw piece-bounds batching, see
  :meth:`repro.core.mixture.UniformMixtureModel.estimate_from_bounds`)
  get the serving layer's vectorised fast path; everything else is
  served through ``estimate_many`` (which may itself be a scalar loop —
  the loop fallback).
* :class:`TrainableBackend` is the *write* surface the service owns —
  ``observe_many`` feedback in, ``refit`` to absorb it, and
  ``snapshot_model`` to produce the immutable model the registry
  publishes.  :class:`~repro.core.quicksel.QuickSel` satisfies it
  natively (its mixture model is already an immutable value object).
* :class:`QueryDrivenBackend` and :class:`ScanBackend` adapt the two
  baseline estimator families of the paper's evaluation
  (:class:`~repro.estimators.base.QueryDrivenEstimator` /
  :class:`~repro.estimators.base.ScanBasedEstimator`) to the protocol,
  so ST-Holes, ISOMER, the query-model, AutoHist, AutoSample, and KDE
  can all be registered, served, migrated between shards, and A/B'd
  against QuickSel behind the same snapshot/version discipline.

The mutable-trainer / immutable-snapshot split the serving layer relies
on is preserved by construction: adapters hand out a *frozen deep copy*
of the wrapped estimator at publish time, so a background refit can keep
mutating the live estimator while readers evaluate the copy.  The frozen
copy is cached until the next state change, which keeps repeated
``snapshot_model()`` calls (and the exact-snapshot hand-off contract of
shard migration) pointing at one identical object.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.estimators.base import (
    PredicateLike,
    QueryDrivenEstimator,
    ScanBasedEstimator,
)
from repro.exceptions import EstimatorError

__all__ = [
    "ServableModel",
    "TrainableBackend",
    "QueryDrivenBackend",
    "ScanBackend",
    "as_backend",
]

Feedback = Sequence[tuple[PredicateLike, float]]


@runtime_checkable
class ServableModel(Protocol):
    """What a published snapshot must be able to do: batched reads.

    ``estimate_many`` must be elementwise equal to the backend's scalar
    estimate on the same state.  Implementations may additionally expose
    ``estimate_from_bounds(piece_lower, piece_upper, owners, count)``
    (not part of the protocol so plain estimators qualify); the snapshot
    layer detects it and routes batches through one raw-bounds kernel
    call instead of per-predicate dispatch.
    """

    @property
    def parameter_count(self) -> int: ...

    def estimate_many(self, predicates: Sequence[PredicateLike]) -> np.ndarray: ...


@runtime_checkable
class TrainableBackend(Protocol):
    """What the serving layer owns per model key: a trainable estimator.

    The contract the service, shards, and cluster rely on:

    * ``observe``/``observe_many`` record feedback; they must be cheap
      (training is deferred to ``refit``) and are always called under
      the service's per-key trainer lock.
    * ``refit()`` absorbs all recorded feedback into the model and
      advances ``trained_count`` to ``observed_count``.
    * ``snapshot_model()`` returns the immutable :class:`ServableModel`
      reflecting the last refit (``None`` before any training — the
      registry serves the uniform bootstrap then).  Repeated calls
      without an intervening state change return the *same* object, so
      shard migration republishes the exact served snapshot.
    """

    name: str

    @property
    def domain(self) -> Hyperrectangle: ...

    @property
    def observed_count(self) -> int: ...

    @property
    def trained_count(self) -> int: ...

    def observe(self, predicate: PredicateLike, selectivity: float) -> None: ...

    def observe_many(self, feedback: Feedback) -> None: ...

    def refit(self) -> object: ...

    def snapshot_model(self) -> "ServableModel | None": ...


class QueryDrivenBackend:
    """Serve any :class:`QueryDrivenEstimator` behind the snapshot discipline.

    The wrapped estimator trains *eagerly* on ``observe`` (ST-Holes
    drills buckets per query, ISOMER re-runs iterative scaling), which
    would defeat deferred background refits — so the adapter queues
    feedback and replays it into the estimator only at :meth:`refit`,
    in arrival order.  An estimator that already absorbed feedback
    before being wrapped keeps it: ``trained_count`` starts at the
    estimator's ``observed_count``.
    """

    def __init__(self, estimator: QueryDrivenEstimator) -> None:
        if not isinstance(estimator, QueryDrivenEstimator):
            raise EstimatorError(
                "QueryDrivenBackend wraps QueryDrivenEstimator instances; "
                f"got {type(estimator).__name__}"
            )
        self._estimator = estimator
        self._pending: list[tuple[PredicateLike, float]] = []
        self._frozen: QueryDrivenEstimator | None = None
        self.name = estimator.name

    @property
    def estimator(self) -> QueryDrivenEstimator:
        """The live (mutable) wrapped estimator."""
        return self._estimator

    @property
    def domain(self) -> Hyperrectangle:
        """The data domain the wrapped estimator covers."""
        return self._estimator.domain

    @property
    def observed_count(self) -> int:
        """Feedback recorded: absorbed by the estimator plus still queued."""
        return self._estimator.observed_count + len(self._pending)

    @property
    def trained_count(self) -> int:
        """Feedback absorbed by the estimator (the last refit's high-water)."""
        return self._estimator.observed_count

    def observe(self, predicate: PredicateLike, selectivity: float) -> None:
        """Queue one piece of feedback for the next refit.

        Selectivity is validated *here*, matching the bare estimator's
        eager ``observe`` contract — a bad value must fail at the call
        site, not poison a background refit later.
        """
        if not (0.0 <= selectivity <= 1.0):
            raise EstimatorError("selectivity must be in [0, 1]")
        self._pending.append((predicate, selectivity))

    def observe_many(self, feedback: Feedback) -> None:
        """Queue a batch of feedback pairs in order (validated eagerly)."""
        feedback = list(feedback)
        for _, selectivity in feedback:
            if not (0.0 <= selectivity <= 1.0):
                raise EstimatorError("selectivity must be in [0, 1]")
        self._pending.extend(feedback)

    def refit(self) -> int:
        """Replay queued feedback into the estimator; returns rows absorbed.

        Replayed item by item so a failing observation (a predicate the
        estimator rejects) leaves the queue holding exactly the
        unabsorbed tail — a retry never re-applies feedback the
        estimator already trained on.
        """
        absorbed = 0
        try:
            for predicate, selectivity in self._pending:
                self._estimator.observe(predicate, selectivity)
                absorbed += 1
        finally:
            if absorbed:
                del self._pending[:absorbed]
                self._frozen = None
        return absorbed

    def snapshot_model(self) -> QueryDrivenEstimator | None:
        """A frozen copy of the estimator's trained state (None if untrained).

        Built via :meth:`~repro.estimators.base.SelectivityEstimator.
        frozen_copy`, so estimators that keep bulky training-only state
        (ISOMER's replay history) publish snapshots sized to their
        model, not their lifetime feedback.
        """
        if self._estimator.observed_count == 0:
            return None
        if self._frozen is None:
            self._frozen = self._estimator.frozen_copy()
        return self._frozen

    def __repr__(self) -> str:
        return (
            f"QueryDrivenBackend({self.name}, trained={self.trained_count}, "
            f"pending={len(self._pending)})"
        )


class ScanBackend:
    """Serve any :class:`ScanBasedEstimator` behind the snapshot discipline.

    Scan-based estimators (AutoHist, AutoSample, KDE) learn nothing from
    query feedback — their statistics come from scanning the data
    source.  Served behind a refit policy, the policy's count/drift
    triggers become the *rescan* triggers: ``refit()`` re-runs
    :meth:`~repro.estimators.base.ScanBasedEstimator.refresh`, so a
    drifting served histogram rebuilds from the current data exactly
    when a drifting QuickSel would retrain.  Feedback is still counted
    (and its served-vs-true error still feeds the drift trigger at the
    service layer); it is just not replayed into the estimator.
    """

    def __init__(self, estimator: ScanBasedEstimator) -> None:
        if not isinstance(estimator, ScanBasedEstimator):
            raise EstimatorError(
                "ScanBackend wraps ScanBasedEstimator instances; "
                f"got {type(estimator).__name__}"
            )
        self._estimator = estimator
        self._observed = 0
        self._trained = 0
        self._frozen: ScanBasedEstimator | None = None
        self._frozen_refresh = -1
        self.name = estimator.name

    @property
    def estimator(self) -> ScanBasedEstimator:
        """The live (mutable) wrapped estimator."""
        return self._estimator

    @property
    def domain(self) -> Hyperrectangle:
        """The data domain the wrapped estimator covers."""
        return self._estimator.domain

    @property
    def observed_count(self) -> int:
        """Feedback observations counted (none are replayed into the scan)."""
        return self._observed

    @property
    def trained_count(self) -> int:
        """Observation high-water mark at the last refresh."""
        return self._trained

    def observe(self, predicate: PredicateLike, selectivity: float) -> None:
        """Count one observation toward the rescan trigger.

        Validated eagerly like the query-driven adapters: the value is
        never trained on, but it prices the drift window and the A/B
        error stats, so garbage must fail at the call site.
        """
        if not (0.0 <= selectivity <= 1.0):
            raise EstimatorError("selectivity must be in [0, 1]")
        self._observed += 1

    def observe_many(self, feedback: Feedback) -> None:
        """Count a batch of observations toward the rescan trigger."""
        feedback = list(feedback)
        for _, selectivity in feedback:
            if not (0.0 <= selectivity <= 1.0):
                raise EstimatorError("selectivity must be in [0, 1]")
        self._observed += len(feedback)

    def refit(self) -> int:
        """Rescan the data source and rebuild statistics."""
        self._estimator.refresh()
        self._trained = self._observed
        return self._estimator.refresh_count

    def snapshot_model(self) -> ScanBasedEstimator | None:
        """A frozen copy of the last-refreshed statistics (None pre-refresh).

        :meth:`~repro.estimators.base.ScanBasedEstimator.frozen_copy`
        detaches the data source around the copy — a bound method (or
        any callable closing over the table) would otherwise drag a
        duplicate of the entire dataset into every published snapshot
        version.  Snapshots are read-only; a rescan attempt on one
        raises.
        """
        refreshes = self._estimator.refresh_count
        if refreshes == 0:
            return None
        if self._frozen is None or self._frozen_refresh != refreshes:
            self._frozen = self._estimator.frozen_copy()
            self._frozen_refresh = refreshes
        return self._frozen

    def __repr__(self) -> str:
        return (
            f"ScanBackend({self.name}, refreshes="
            f"{self._estimator.refresh_count}, observed={self._observed})"
        )


def as_backend(estimator: object) -> TrainableBackend:
    """Coerce an estimator to the :class:`TrainableBackend` protocol.

    Objects already satisfying the protocol (QuickSel, the adapters, any
    future native backend) pass through unchanged; bare query-driven and
    scan-based estimators are wrapped in the matching adapter.  This is
    what lets ``register_model`` accept "any backend": the service and
    the cluster both route registrations through here.
    """
    if isinstance(estimator, (QueryDrivenBackend, ScanBackend)):
        return estimator
    if isinstance(estimator, QueryDrivenEstimator):
        return QueryDrivenBackend(estimator)
    if isinstance(estimator, ScanBasedEstimator):
        return ScanBackend(estimator)
    if isinstance(estimator, TrainableBackend):
        return estimator
    raise EstimatorError(
        f"{type(estimator).__name__} is not a TrainableBackend: it needs "
        "observe_many/refit/snapshot_model (wrap query-driven or scan-based "
        "estimators, or implement the protocol natively like QuickSel)"
    )
