"""QueryModel: similarity-weighted averaging over observed queries.

The fourth query-driven baseline of Section 5.1 (Anagnostopoulos &
Triantafillou).  It never builds a model of the data at all: the estimate
for a new predicate is a weighted average of the selectivities of the
observed queries, with weights given by the similarity between the new
predicate and each observed predicate.

The similarity kernel used here combines the volume-Jaccard overlap of
the two predicate regions with a Gaussian kernel on the distance between
their centres (so non-overlapping but nearby queries still contribute, as
the original method's query-space clustering does).  With no observed
queries the estimator falls back to the predicate's volume fraction of
the domain — the uninformed uniform prior.
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.core.region import Region
from repro.estimators.base import PredicateLike, QueryDrivenEstimator
from repro.exceptions import EstimatorError

__all__ = ["QueryModel"]


class QueryModel(QueryDrivenEstimator):
    """Selectivity estimation by similarity-weighted query averaging."""

    name = "QueryModel"

    def __init__(
        self,
        domain: Hyperrectangle,
        bandwidth: float = 0.1,
        overlap_weight: float = 1.0,
    ) -> None:
        super().__init__(domain)
        if bandwidth <= 0:
            raise EstimatorError("bandwidth must be positive")
        if overlap_weight < 0:
            raise EstimatorError("overlap_weight must be non-negative")
        self._bandwidth = bandwidth
        self._overlap_weight = overlap_weight
        self._queries: list[tuple[Region, float, np.ndarray, float]] = []
        self._observed_count = 0
        # Normalise centre distances by the domain diagonal so the
        # bandwidth is scale-free.
        self._scale = float(np.linalg.norm(domain.widths)) or 1.0

    # ------------------------------------------------------------------
    # SelectivityEstimator interface
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Each remembered query contributes one stored selectivity."""
        return len(self._queries)

    def observe(self, predicate: PredicateLike, selectivity: float) -> None:
        if not (0.0 <= selectivity <= 1.0):
            raise EstimatorError("selectivity must be in [0, 1]")
        region = self._region(predicate)
        self._observed_count += 1
        if region.is_empty:
            return
        bounding = region.bounding_box()
        assert bounding is not None
        self._queries.append(
            (region, selectivity, bounding.center, region.volume)
        )

    def estimate(self, predicate: PredicateLike) -> float:
        region = self._region(predicate)
        if region.is_empty:
            return 0.0
        domain_volume = self._domain.volume
        prior = region.volume / domain_volume if domain_volume > 0 else 0.0
        if not self._queries:
            return float(min(max(prior, 0.0), 1.0))

        bounding = region.bounding_box()
        assert bounding is not None
        center = bounding.center
        volume = region.volume

        weights = np.empty(len(self._queries))
        values = np.empty(len(self._queries))
        for index, (observed_region, selectivity, observed_center, observed_volume) in enumerate(
            self._queries
        ):
            overlap = observed_region.intersection_volumes(list(region.boxes)).sum()
            union = volume + observed_volume - overlap
            jaccard = overlap / union if union > 0 else 0.0
            distance = np.linalg.norm(center - observed_center) / self._scale
            kernel = float(np.exp(-0.5 * (distance / self._bandwidth) ** 2))
            weights[index] = self._overlap_weight * jaccard + kernel
            values[index] = selectivity

        total = weights.sum()
        if total <= 1e-12:
            return float(min(max(prior, 0.0), 1.0))
        estimate = float(np.dot(weights, values) / total)
        return float(min(max(estimate, 0.0), 1.0))

    def __repr__(self) -> str:
        return f"QueryModel(observed={self._observed_count})"
