"""STHoles-style query-driven histogram (Bruno et al., baseline in Section 5.1).

STHoles drills each observed predicate into the existing buckets and
assigns frequencies with an *error-feedback* rule: after drilling, the
buckets covering the predicate are rescaled so their total mass matches
the observed selectivity, spreading the observed mass uniformly (by
volume) over the newly-created hole buckets.  To keep its model small it
merges buckets when a budget is exceeded — the behaviour the paper points
to when explaining why STHoles keeps fewer parameters than ISOMER but
pays for it in accuracy (Figure 4).

The merge step here is a volume-preserving simplification of the original
parent/child merge: the lowest-mass bucket is removed and its frequency is
donated to the bucket with the nearest centre.  Frequencies are conserved
exactly; coverage of the donor's volume becomes approximate, which is the
same accuracy-for-size trade the original algorithm makes.
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.estimators.base import PredicateLike, QueryDrivenEstimator
from repro.estimators.buckets import BucketBatchEstimation, BucketSet, drill
from repro.exceptions import EstimatorError

__all__ = ["STHoles"]


class STHoles(BucketBatchEstimation, QueryDrivenEstimator):
    """Error-feedback query-driven histogram with bucket merging."""

    name = "STHoles"

    def __init__(self, domain: Hyperrectangle, max_buckets: int = 1000) -> None:
        super().__init__(domain)
        if max_buckets < 1:
            raise EstimatorError("max_buckets must be >= 1")
        self._buckets = BucketSet.initial(domain)
        self._max_buckets = max_buckets
        self._observed_count = 0

    # ------------------------------------------------------------------
    # SelectivityEstimator interface
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """One frequency parameter per bucket."""
        return len(self._buckets)

    @property
    def bucket_count(self) -> int:
        """Number of histogram buckets."""
        return len(self._buckets)

    def estimate(self, predicate: PredicateLike) -> float:
        region = self._region(predicate)
        raw = self._buckets.estimate_region(region)
        return float(min(max(raw, 0.0), 1.0))

    def observe(self, predicate: PredicateLike, selectivity: float) -> None:
        if not (0.0 <= selectivity <= 1.0):
            raise EstimatorError("selectivity must be in [0, 1]")
        region = self._region(predicate)
        self._observed_count += 1
        if region.is_empty:
            return

        inside = drill(self._buckets, region.boxes)
        self._apply_feedback(inside, selectivity)
        self._merge_to_budget()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_feedback(self, inside: list[int], selectivity: float) -> None:
        """Rescale bucket masses so the predicate's region carries ``selectivity``."""
        buckets = self._buckets.buckets
        inside_set = set(inside)
        current_inside = sum(buckets[i].frequency for i in inside)
        current_outside = self._buckets.total_mass - current_inside

        if inside:
            if current_inside > 0:
                scale = selectivity / current_inside
                for i in inside:
                    buckets[i].frequency *= scale
            else:
                # Spread the observed mass uniformly (by volume) over the
                # hole buckets created for this predicate.
                volumes = np.array([buckets[i].volume for i in inside])
                total = volumes.sum()
                shares = (
                    volumes / total if total > 0 else np.full(len(inside), 1.0 / len(inside))
                )
                for i, share in zip(inside, shares):
                    buckets[i].frequency = selectivity * share

        remaining = max(1.0 - selectivity, 0.0)
        if current_outside > 0:
            scale = remaining / current_outside
            for index, bucket in enumerate(buckets):
                if index not in inside_set:
                    bucket.frequency *= scale
        # Every branch above edits frequencies in place without touching
        # the list object — the cache key cannot see it.
        self._buckets.mark_frequencies_dirty()

    def _merge_to_budget(self) -> None:
        """Merge buckets until the budget is respected (frequency-conserving)."""
        buckets = self._buckets.buckets
        while len(buckets) > self._max_buckets:
            frequencies = np.array([bucket.frequency for bucket in buckets])
            victim = int(frequencies.argmin())
            victim_bucket = buckets.pop(victim)
            if not buckets:
                buckets.append(victim_bucket)
                break
            centers = np.stack([bucket.box.center for bucket in buckets])
            distances = np.linalg.norm(centers - victim_bucket.box.center, axis=1)
            receiver = int(distances.argmin())
            buckets[receiver].frequency += victim_bucket.frequency
        self._buckets.mark_frequencies_dirty()

    def __repr__(self) -> str:
        return (
            f"STHoles(buckets={self.bucket_count}, observed={self._observed_count}, "
            f"max_buckets={self._max_buckets})"
        )
