"""AutoHist: periodically-rebuilt equi-width multidimensional histogram.

The paper's first scan-based baseline (Section 5.1): an equi-width
histogram over all ``d`` columns that is rebuilt by scanning the data
whenever more than 20 % of the rows have been modified since the last
scan (SQL Server's AUTO_UPDATE_STATISTICS rule).  Selectivity estimation
uses the standard uniform-within-cell assumption, so a predicate box is
estimated as the histogram tensor contracted with the per-dimension
fractional overlap of the box with each bin.

The bucket budget is the parameter the space-budget experiments (Figure 5
and Figure 7d) sweep; the per-dimension bin count is ``⌊budget^(1/d)⌋``
(at least 1), matching an equi-width layout with roughly ``budget`` cells.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.core.predicate import lower_batch
from repro.estimators.base import DataSource, PredicateLike, ScanBasedEstimator
from repro.exceptions import EstimatorError

__all__ = ["AutoHist"]


class AutoHist(ScanBasedEstimator):
    """Equi-width multidimensional histogram with automatic updates."""

    name = "AutoHist"

    def __init__(
        self,
        domain: Hyperrectangle,
        data_source: DataSource,
        bucket_budget: int = 100,
        update_threshold: float = 0.2,
    ) -> None:
        super().__init__(domain, data_source, update_threshold=update_threshold)
        if bucket_budget < 1:
            raise EstimatorError("bucket_budget must be >= 1")
        self._bucket_budget = bucket_budget
        dimension = domain.dimension
        self._bins_per_dim = max(int(np.floor(bucket_budget ** (1.0 / dimension))), 1)
        self._edges = [
            np.linspace(domain.lower[d], domain.upper[d], self._bins_per_dim + 1)
            for d in range(dimension)
        ]
        self._counts: np.ndarray | None = None
        self._total_rows = 0

    # ------------------------------------------------------------------
    # SelectivityEstimator interface
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Total number of histogram cells."""
        return int(self._bins_per_dim**self._domain.dimension)

    @property
    def bins_per_dimension(self) -> int:
        """Number of equi-width bins along each dimension."""
        return self._bins_per_dim

    def estimate(self, predicate: PredicateLike) -> float:
        if self._counts is None:
            raise EstimatorError("AutoHist.refresh() must be called before estimating")
        if self._total_rows == 0:
            return 0.0
        region = self._region(predicate)
        if region.is_empty:
            return 0.0
        total = 0.0
        for box in region.boxes:
            total += self._estimate_box(box)
        return float(min(max(total, 0.0), 1.0))

    def estimate_many(self, predicates: Sequence[PredicateLike]) -> np.ndarray:
        """Vectorised batch estimation: one tensor contraction per dimension.

        All predicate pieces are lowered once (via
        :func:`~repro.core.predicate.lower_batch`) and the count tensor
        is contracted against the whole batch's per-dimension overlap
        fractions, so a served AutoHist model answers the batch path
        without the per-predicate scalar loop.  Elementwise equal to
        :meth:`estimate`.
        """
        piece_lower, piece_upper, owners = lower_batch(predicates, self._domain)
        return self.estimate_from_bounds(
            piece_lower, piece_upper, owners, len(predicates)
        )

    def estimate_from_bounds(
        self,
        piece_lower: Sequence[np.ndarray],
        piece_upper: Sequence[np.ndarray],
        owners: Sequence[int],
        count: int,
    ) -> np.ndarray:
        """Raw-bounds batch surface (the serving snapshot's fast path)."""
        if self._counts is None:
            raise EstimatorError("AutoHist.refresh() must be called before estimating")
        if self._total_rows == 0 or not len(owners):
            return np.zeros(count)
        lower = np.stack(piece_lower)
        upper = np.stack(piece_upper)
        # Contract the count tensor one dimension at a time, exactly like
        # the scalar path, but with a (pieces, bins) fraction matrix per
        # dimension instead of a vector.
        result: np.ndarray = self._counts
        for dim in range(self._domain.dimension):
            fractions = self._batch_overlap_fractions(
                dim, lower[:, dim], upper[:, dim]
            )
            if dim == 0:
                result = np.tensordot(fractions, result, axes=([1], [0]))
            else:
                result = np.einsum("pi...,pi->p...", result, fractions)
        per_piece = result / self._total_rows
        estimates = np.bincount(
            np.asarray(owners, dtype=np.intp), weights=per_piece,
            minlength=count,
        )
        return np.clip(estimates, 0.0, 1.0)

    # ------------------------------------------------------------------
    # ScanBasedEstimator interface
    # ------------------------------------------------------------------
    def _build(self, data: np.ndarray) -> None:
        counts, _ = np.histogramdd(data, bins=self._edges)
        self._counts = counts
        self._total_rows = data.shape[0]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _estimate_box(self, box: Hyperrectangle) -> float:
        assert self._counts is not None
        result = self._counts
        # Contract the count tensor one dimension at a time with the
        # fractional overlap of the query interval against each bin.
        for dim in range(self._domain.dimension):
            fractions = self._bin_overlap_fractions(dim, box)
            result = np.tensordot(fractions, result, axes=([0], [0]))
        return float(result) / self._total_rows

    def _bin_overlap_fractions(self, dim: int, box: Hyperrectangle) -> np.ndarray:
        edges = self._edges[dim]
        low, high = box.bounds[dim]
        lower_edges = edges[:-1]
        upper_edges = edges[1:]
        widths = upper_edges - lower_edges
        overlap = np.clip(
            np.minimum(upper_edges, high) - np.maximum(lower_edges, low), 0.0, None
        )
        fractions = np.divide(
            overlap, widths, out=np.zeros_like(overlap), where=widths > 0
        )
        return fractions

    def _batch_overlap_fractions(
        self, dim: int, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """``(pieces, bins)`` overlap fractions along one dimension."""
        edges = self._edges[dim]
        lower_edges = edges[:-1]
        upper_edges = edges[1:]
        widths = upper_edges - lower_edges
        overlap = np.clip(
            np.minimum(upper_edges[None, :], high[:, None])
            - np.maximum(lower_edges[None, :], low[:, None]),
            0.0,
            None,
        )
        return np.divide(
            overlap,
            widths[None, :],
            out=np.zeros_like(overlap),
            where=(widths > 0)[None, :],
        )

    def __repr__(self) -> str:
        return (
            f"AutoHist(bins_per_dim={self._bins_per_dim}, "
            f"cells={self.parameter_count}, refreshes={self.refresh_count})"
        )
