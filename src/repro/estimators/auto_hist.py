"""AutoHist: periodically-rebuilt equi-width multidimensional histogram.

The paper's first scan-based baseline (Section 5.1): an equi-width
histogram over all ``d`` columns that is rebuilt by scanning the data
whenever more than 20 % of the rows have been modified since the last
scan (SQL Server's AUTO_UPDATE_STATISTICS rule).  Selectivity estimation
uses the standard uniform-within-cell assumption, so a predicate box is
estimated as the histogram tensor contracted with the per-dimension
fractional overlap of the box with each bin.

The bucket budget is the parameter the space-budget experiments (Figure 5
and Figure 7d) sweep; the per-dimension bin count is ``⌊budget^(1/d)⌋``
(at least 1), matching an equi-width layout with roughly ``budget`` cells.
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.estimators.base import DataSource, PredicateLike, ScanBasedEstimator
from repro.exceptions import EstimatorError

__all__ = ["AutoHist"]


class AutoHist(ScanBasedEstimator):
    """Equi-width multidimensional histogram with automatic updates."""

    name = "AutoHist"

    def __init__(
        self,
        domain: Hyperrectangle,
        data_source: DataSource,
        bucket_budget: int = 100,
        update_threshold: float = 0.2,
    ) -> None:
        super().__init__(domain, data_source, update_threshold=update_threshold)
        if bucket_budget < 1:
            raise EstimatorError("bucket_budget must be >= 1")
        self._bucket_budget = bucket_budget
        dimension = domain.dimension
        self._bins_per_dim = max(int(np.floor(bucket_budget ** (1.0 / dimension))), 1)
        self._edges = [
            np.linspace(domain.lower[d], domain.upper[d], self._bins_per_dim + 1)
            for d in range(dimension)
        ]
        self._counts: np.ndarray | None = None
        self._total_rows = 0

    # ------------------------------------------------------------------
    # SelectivityEstimator interface
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Total number of histogram cells."""
        return int(self._bins_per_dim**self._domain.dimension)

    @property
    def bins_per_dimension(self) -> int:
        """Number of equi-width bins along each dimension."""
        return self._bins_per_dim

    def estimate(self, predicate: PredicateLike) -> float:
        if self._counts is None:
            raise EstimatorError("AutoHist.refresh() must be called before estimating")
        if self._total_rows == 0:
            return 0.0
        region = self._region(predicate)
        if region.is_empty:
            return 0.0
        total = 0.0
        for box in region.boxes:
            total += self._estimate_box(box)
        return float(min(max(total, 0.0), 1.0))

    # ------------------------------------------------------------------
    # ScanBasedEstimator interface
    # ------------------------------------------------------------------
    def _build(self, data: np.ndarray) -> None:
        counts, _ = np.histogramdd(data, bins=self._edges)
        self._counts = counts
        self._total_rows = data.shape[0]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _estimate_box(self, box: Hyperrectangle) -> float:
        assert self._counts is not None
        result = self._counts
        # Contract the count tensor one dimension at a time with the
        # fractional overlap of the query interval against each bin.
        for dim in range(self._domain.dimension):
            fractions = self._bin_overlap_fractions(dim, box)
            result = np.tensordot(fractions, result, axes=([0], [0]))
        return float(result) / self._total_rows

    def _bin_overlap_fractions(self, dim: int, box: Hyperrectangle) -> np.ndarray:
        edges = self._edges[dim]
        low, high = box.bounds[dim]
        lower_edges = edges[:-1]
        upper_edges = edges[1:]
        widths = upper_edges - lower_edges
        overlap = np.clip(
            np.minimum(upper_edges, high) - np.maximum(lower_edges, low), 0.0, None
        )
        fractions = np.divide(
            overlap, widths, out=np.zeros_like(overlap), where=widths > 0
        )
        return fractions

    def __repr__(self) -> str:
        return (
            f"AutoHist(bins_per_dim={self._bins_per_dim}, "
            f"cells={self.parameter_count}, refreshes={self.refresh_count})"
        )
