"""Shared bucket machinery for query-driven histograms (STHoles, ISOMER).

Query-driven histograms carve the domain into *disjoint* buckets by
"drilling" each observed predicate into the existing buckets (Figure 1 of
the paper): any bucket that partially overlaps the new predicate's box is
split into the overlapping part and a slab decomposition of the rest.
After drilling, every bucket is either entirely inside or entirely outside
each observed predicate — the invariant iterative scaling relies on
(Appendix B) and the reason the bucket count can grow exponentially with
the number of observed queries (Limitation 1 in Section 2.3).

This module provides the bucket container and the drilling primitive; the
individual estimators decide how frequencies are (re)assigned.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.geometry import (
    Hyperrectangle,
    cross_intersection_volumes,
    stack_bounds,
)
from repro.core.predicate import lower_batch
from repro.core.region import Region
from repro.exceptions import EstimatorError
from repro.kernels import (
    get_arena,
    owners_array,
    stack_pieces,
    weighted_overlap_estimates_into,
)

__all__ = ["Bucket", "BucketSet", "BucketBatchEstimation", "drill"]


@dataclass
class Bucket:
    """A histogram bucket: an axis-aligned box and its frequency mass."""

    box: Hyperrectangle
    frequency: float = 0.0

    @property
    def volume(self) -> float:
        """Volume of the bucket's box."""
        return self.box.volume


@dataclass
class BucketSet:
    """A collection of disjoint buckets covering (a subset of) the domain."""

    domain: Hyperrectangle
    buckets: list[Bucket] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Stacked-geometry cache for the batched estimation path, keyed
        # on (list identity, length): every geometry edit in this
        # codebase either rebinds ``buckets`` to a new list (drill) or
        # changes its length (merge), so the key detects them all.
        # In-place *frequency* edits are geometry-neutral (frequencies
        # are re-read per call).  Code that replaces a bucket in place
        # without changing the list object or its length must rebind
        # ``buckets`` instead.
        self._geometry: (
            tuple[list[Bucket], int, np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        # Cached frequency/volume vector for the batch kernel, keyed the
        # same way *plus* an explicit dirty protocol: in-place frequency
        # edits keep both the list object and its length, so mutators
        # must call mark_frequencies_dirty() (set_frequencies does;
        # STHoles feedback scaling does).
        self._frequency_cache: tuple[list[Bucket], int, np.ndarray] | None = None

    @classmethod
    def initial(cls, domain: Hyperrectangle) -> "BucketSet":
        """Start with a single bucket covering the domain with mass 1."""
        return cls(domain=domain, buckets=[Bucket(box=domain, frequency=1.0)])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.buckets)

    def __iter__(self):
        return iter(self.buckets)

    @property
    def boxes(self) -> list[Hyperrectangle]:
        """The bucket boxes in order."""
        return [bucket.box for bucket in self.buckets]

    @property
    def frequencies(self) -> np.ndarray:
        """The bucket frequencies as a vector."""
        return np.array([bucket.frequency for bucket in self.buckets])

    @property
    def volumes(self) -> np.ndarray:
        """The bucket volumes as a vector."""
        return np.array([bucket.volume for bucket in self.buckets])

    @property
    def total_mass(self) -> float:
        """Sum of all bucket frequencies."""
        return float(sum(bucket.frequency for bucket in self.buckets))

    def set_frequencies(self, frequencies: Sequence[float] | np.ndarray) -> None:
        """Overwrite every bucket frequency (used after a global refit)."""
        values = np.asarray(frequencies, dtype=float)
        if values.shape != (len(self.buckets),):
            raise EstimatorError(
                f"expected {len(self.buckets)} frequencies; got {values.shape}"
            )
        for bucket, value in zip(self.buckets, values):
            bucket.frequency = float(value)
        self.mark_frequencies_dirty()

    def mark_frequencies_dirty(self) -> None:
        """Invalidate the cached frequency/volume vector.

        Required after any *in-place* ``bucket.frequency`` edit that
        leaves the bucket list object and its length unchanged (the
        geometry key cannot see those).  Rebinding or resizing the list
        invalidates the cache on its own.
        """
        self._frequency_cache = None

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_box(self, box: Hyperrectangle) -> float:
        """Estimated selectivity of a box under the uniform-bucket assumption."""
        if not self.buckets:
            return 0.0
        overlaps = cross_intersection_volumes([box], self.boxes)[0]
        volumes = self.volumes
        fractions = np.divide(
            overlaps, volumes, out=np.zeros_like(overlaps), where=volumes > 0
        )
        return float(np.dot(self.frequencies, fractions))

    def estimate_region(self, region: Region) -> float:
        """Estimated selectivity of a union-of-boxes region."""
        if region.is_empty or not self.buckets:
            return 0.0
        overlaps = region.intersection_volumes(self.boxes)
        volumes = self.volumes
        fractions = np.divide(
            overlaps, volumes, out=np.zeros_like(overlaps), where=volumes > 0
        )
        return float(np.dot(self.frequencies, fractions))

    def estimate_from_bounds(
        self,
        piece_lower: Sequence[np.ndarray],
        piece_upper: Sequence[np.ndarray],
        owners: Sequence[int],
        count: int,
        dtype: object = None,
    ) -> np.ndarray:
        """Batched estimation from raw predicate-piece bounds.

        Same contract as :meth:`repro.core.mixture.UniformMixtureModel.
        estimate_from_bounds`: one ``(d,)`` corner pair per disjoint
        predicate piece, ``owners[i]`` naming the owning predicate, and
        one shared :func:`~repro.kernels.weighted_overlap_estimates_into`
        call for the whole batch — a bucket histogram is the same kernel
        as a mixture model with ``frequency/volume`` standing in for
        ``weight/volume``.  Elementwise equal to :meth:`estimate_region`
        per predicate, clipped to ``[0, 1]``.  Scratch comes from the
        calling thread's arena; a warm call allocates only the returned
        ``(count,)`` result.
        """
        if not len(owners) or not self.buckets:
            return np.zeros(count)
        bucket_lower, bucket_upper, volumes = self._stacked_geometry()
        freq_over_volume = self._frequency_over_volume(volumes)
        arena = get_arena()
        if dtype is None or np.dtype(dtype) == np.float64:
            work_dtype = np.float64
            col_lower, col_upper = bucket_lower, bucket_upper
            weights = freq_over_volume
        else:
            work_dtype = np.dtype(dtype)
            col_lower = arena.request(
                "kernels.col_lower", bucket_lower.shape, work_dtype
            )
            col_lower[...] = bucket_lower
            col_upper = arena.request(
                "kernels.col_upper", bucket_upper.shape, work_dtype
            )
            col_upper[...] = bucket_upper
            weights = arena.request(
                "kernels.col_weights", freq_over_volume.shape, work_dtype
            )
            weights[...] = freq_over_volume
        rows_lower = stack_pieces(piece_lower, "kernels.rows_lower", arena, work_dtype)
        rows_upper = stack_pieces(piece_upper, "kernels.rows_upper", arena, work_dtype)
        owner_view, identity = owners_array(owners, count, "kernels.owners", arena)
        pieces, components = rows_lower.shape[0], col_lower.shape[0]
        width = rows_lower.shape[1] if pieces else 0
        out = np.zeros(count, dtype=work_dtype)
        weighted_overlap_estimates_into(
            rows_lower,
            rows_upper,
            owner_view,
            col_lower,
            col_upper,
            weights,
            arena.request("kernels.scratch_a", (pieces, components, width), work_dtype),
            arena.request("kernels.scratch_b", (pieces, components, width), work_dtype),
            arena.request("kernels.overlaps", (pieces, components), work_dtype),
            arena.request("kernels.per_piece", (pieces,), work_dtype),
            out,
            owners_identity=identity,
        )
        return out

    def _stacked_geometry(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(lower, upper, volumes)`` stacks of the bucket boxes.

        Rebuilt when the bucket list was rebound or resized (see
        ``__post_init__``); a frozen snapshot deepcopy carries the cache
        over, so repeated serves of an immutable histogram pay the
        Python-level stacking once, not per call.
        """
        buckets = self.buckets
        cached = self._geometry
        if (
            cached is not None
            and cached[0] is buckets
            and cached[1] == len(buckets)
        ):
            return cached[2], cached[3], cached[4]
        lower, upper = stack_bounds([bucket.box for bucket in buckets])
        volumes = np.array([bucket.volume for bucket in buckets])
        self._geometry = (buckets, len(buckets), lower, upper, volumes)
        return lower, upper, volumes

    def _frequency_over_volume(self, volumes: np.ndarray) -> np.ndarray:
        """Cached ``frequency / volume`` vector for the batch kernel.

        Keyed on (list identity, length) like the geometry cache and
        additionally invalidated by :meth:`mark_frequencies_dirty` for
        in-place frequency edits the key cannot detect.
        """
        buckets = self.buckets
        cached = self._frequency_cache
        if (
            cached is not None
            and cached[0] is buckets
            and cached[1] == len(buckets)
        ):
            return cached[2]
        frequencies = np.array([bucket.frequency for bucket in buckets])
        ratio = np.divide(
            frequencies, volumes, out=np.zeros_like(frequencies),
            where=volumes > 0,
        )
        self._frequency_cache = (buckets, len(buckets), ratio)
        return ratio

    def membership_matrix(self, regions: Sequence[Region]) -> np.ndarray:
        """0/1 matrix saying which buckets lie inside which predicate regions.

        After drilling every observed predicate, each bucket is either
        fully inside or fully outside each region; a bucket is classified
        as "inside" when the region covers (almost all of) its volume.
        """
        if not self.buckets:
            return np.zeros((len(regions), 0))
        boxes = self.boxes
        volumes = self.volumes
        matrix = np.zeros((len(regions), len(boxes)))
        for row, region in enumerate(regions):
            overlaps = region.intersection_volumes(boxes)
            fractions = np.divide(
                overlaps, volumes, out=np.zeros_like(overlaps), where=volumes > 0
            )
            matrix[row] = (fractions > 0.5).astype(float)
        return matrix


class BucketBatchEstimation:
    """Vectorised batch surface for estimators backed by a :class:`BucketSet`.

    Mixed into the bucket histograms (ST-Holes, ISOMER): provides
    ``estimate_many`` (lower the batch once, one shared kernel call —
    elementwise equal to the estimator's scalar ``estimate``) and the
    raw-bounds ``estimate_from_bounds`` surface the serving snapshot's
    fast path dispatches on.  Hosts expose ``_domain`` and ``_buckets``.
    """

    _domain: Hyperrectangle
    _buckets: BucketSet

    def estimate_many(self, predicates: Sequence[object]) -> np.ndarray:
        """Batch estimation through one :meth:`BucketSet.estimate_from_bounds`."""
        piece_lower, piece_upper, owners = lower_batch(predicates, self._domain)
        return self.estimate_from_bounds(
            piece_lower, piece_upper, owners, len(predicates)
        )

    def estimate_from_bounds(
        self,
        piece_lower: Sequence[np.ndarray],
        piece_upper: Sequence[np.ndarray],
        owners: Sequence[int],
        count: int,
        dtype: object = None,
    ) -> np.ndarray:
        """Raw-bounds batch surface (the serving snapshot's fast path)."""
        return self._buckets.estimate_from_bounds(
            piece_lower, piece_upper, owners, count, dtype=dtype
        )


def drill(
    bucket_set: BucketSet, target_boxes: Iterable[Hyperrectangle]
) -> list[int]:
    """Split buckets so each is fully inside or outside every target box.

    For every box in ``target_boxes`` (the disjoint pieces of an observed
    predicate's region), each partially-overlapping bucket is replaced by
    the overlap bucket plus the slab decomposition of the remainder.  The
    original bucket's frequency is distributed proportionally to volume
    (the STHoles "uniform spread" assumption).

    Returns the indices (into the updated ``bucket_set.buckets``) of the
    buckets that now lie inside the target boxes.
    """
    targets = list(target_boxes)
    for target in targets:
        updated: list[Bucket] = []
        for bucket in bucket_set.buckets:
            overlap_volume = bucket.box.intersection_volume(target)
            if overlap_volume <= 0.0 or bucket.volume <= 0.0:
                updated.append(bucket)
                continue
            if overlap_volume >= bucket.volume * (1.0 - 1e-12):
                # Fully contained: nothing to split.
                updated.append(bucket)
                continue
            overlap_box = bucket.box.intersection(target)
            assert overlap_box is not None
            remainder = bucket.box.subtract(target)
            pieces = [overlap_box] + remainder
            piece_volumes = np.array([piece.volume for piece in pieces])
            total = piece_volumes.sum()
            if total <= 0.0:
                updated.append(bucket)
                continue
            shares = bucket.frequency * piece_volumes / total
            for piece, share in zip(pieces, shares):
                updated.append(Bucket(box=piece, frequency=float(share)))
        bucket_set.buckets = updated

    inside: list[int] = []
    for index, bucket in enumerate(bucket_set.buckets):
        if bucket.volume <= 0.0:
            continue
        covered = sum(bucket.box.intersection_volume(t) for t in targets)
        if covered >= bucket.volume * (1.0 - 1e-9):
            inside.append(index)
    return inside
