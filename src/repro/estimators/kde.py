"""Scan-based kernel-density-estimation selectivity estimator.

The related-work section of the paper (Section 7.1) discusses KDE-based
selectivity estimation (GenHist, Heimel et al.) as the closest scan-based
relative of mixture models.  We include a product-Gaussian KDE estimator
as an extension so the model-effectiveness comparison of Section 5.5 can
also be run against a scan-based density model.

The estimator keeps a uniform sample of rows, places an axis-aligned
Gaussian kernel on each sampled point (bandwidth per dimension from
Scott's rule), and evaluates the probability mass of a predicate box as a
product of one-dimensional normal CDF differences, averaged over the
sample points.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.core.geometry import Hyperrectangle
from repro.estimators.base import DataSource, PredicateLike, ScanBasedEstimator
from repro.exceptions import EstimatorError

__all__ = ["KDEEstimator"]


def _normal_cdf(values: np.ndarray) -> np.ndarray:
    """Standard normal CDF, vectorised."""
    return 0.5 * (1.0 + special.erf(values / np.sqrt(2.0)))


class KDEEstimator(ScanBasedEstimator):
    """Product-Gaussian kernel density estimator over a row sample."""

    name = "KDE"

    def __init__(
        self,
        domain: Hyperrectangle,
        data_source: DataSource,
        sample_size: int = 1000,
        update_threshold: float = 0.2,
        bandwidth_scale: float = 1.0,
        random_seed: int | None = 0,
    ) -> None:
        super().__init__(domain, data_source, update_threshold=update_threshold)
        if sample_size < 2:
            raise EstimatorError("sample_size must be >= 2")
        if bandwidth_scale <= 0:
            raise EstimatorError("bandwidth_scale must be positive")
        self._sample_size = sample_size
        self._bandwidth_scale = bandwidth_scale
        self._rng = np.random.default_rng(random_seed)
        self._sample: np.ndarray | None = None
        self._bandwidths: np.ndarray | None = None

    # ------------------------------------------------------------------
    # SelectivityEstimator interface
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Sample points times dimensions (stored kernel centres)."""
        if self._sample is None:
            return 0
        return int(self._sample.shape[0])

    def estimate(self, predicate: PredicateLike) -> float:
        if self._sample is None or self._bandwidths is None:
            raise EstimatorError("KDEEstimator.refresh() must be called first")
        if self._sample.shape[0] == 0:
            return 0.0
        region = self._region(predicate)
        if region.is_empty:
            return 0.0
        total = 0.0
        for box in region.boxes:
            total += self._box_mass(box)
        return float(min(max(total, 0.0), 1.0))

    # ------------------------------------------------------------------
    # ScanBasedEstimator interface
    # ------------------------------------------------------------------
    def _build(self, data: np.ndarray) -> None:
        row_count = data.shape[0]
        if row_count == 0:
            self._sample = data.copy()
            self._bandwidths = np.ones(self._domain.dimension)
            return
        if row_count <= self._sample_size:
            sample = data.copy()
        else:
            picked = self._rng.choice(row_count, size=self._sample_size, replace=False)
            sample = data[picked].copy()
        count, dimension = sample.shape
        spreads = sample.std(axis=0, ddof=1) if count > 1 else np.ones(dimension)
        spreads = np.where(spreads > 0, spreads, self._domain.widths / 10.0)
        # Scott's rule: h_d = sigma_d * n^(-1 / (d + 4)).
        scotts = spreads * count ** (-1.0 / (dimension + 4))
        self._bandwidths = np.maximum(scotts * self._bandwidth_scale, 1e-12)
        self._sample = sample

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _box_mass(self, box: Hyperrectangle) -> float:
        assert self._sample is not None and self._bandwidths is not None
        lower = (box.lower[None, :] - self._sample) / self._bandwidths[None, :]
        upper = (box.upper[None, :] - self._sample) / self._bandwidths[None, :]
        per_dimension = _normal_cdf(upper) - _normal_cdf(lower)
        per_point = per_dimension.prod(axis=1)
        return float(per_point.mean())

    def __repr__(self) -> str:
        return f"KDEEstimator(sample={self.parameter_count})"
