"""ISOMER+QP: ISOMER's buckets with QuickSel's penalised-QP training.

The paper's third query-driven baseline (Section 5.1) keeps the
histogram-bucket creation of ISOMER but swaps iterative scaling for the
quadratic program of Problem 3.  Because the buckets are disjoint, the
``Q`` matrix of Theorem 1 is diagonal (``Q_jj = 1/|G_j|``), so the
analytic solve can exploit the Woodbury identity and only factor an
``n × n`` system (``n`` = number of observed queries) instead of an
``m × m`` one (``m`` = number of buckets, which is what explodes).
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.core.region import Region
from repro.estimators.base import PredicateLike, QueryDrivenEstimator
from repro.estimators.buckets import BucketSet, drill
from repro.exceptions import EstimatorError

__all__ = ["IsomerQP"]


class IsomerQP(QueryDrivenEstimator):
    """ISOMER's bucket creation + QuickSel's penalised quadratic program."""

    name = "ISOMER+QP"

    def __init__(
        self,
        domain: Hyperrectangle,
        penalty: float = 1.0e6,
        max_buckets: int | None = 200_000,
        clip_negative: bool = True,
    ) -> None:
        super().__init__(domain)
        if penalty <= 0:
            raise EstimatorError("penalty must be positive")
        if max_buckets is not None and max_buckets < 1:
            raise EstimatorError("max_buckets must be >= 1 when set")
        self._buckets = BucketSet.initial(domain)
        self._queries: list[tuple[Region, float]] = []
        self._penalty = penalty
        self._max_buckets = max_buckets
        self._clip_negative = clip_negative
        self._observed_count = 0

    # ------------------------------------------------------------------
    # SelectivityEstimator interface
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """One frequency parameter per bucket."""
        return len(self._buckets)

    @property
    def bucket_count(self) -> int:
        """Number of histogram buckets."""
        return len(self._buckets)

    def estimate(self, predicate: PredicateLike) -> float:
        region = self._region(predicate)
        raw = self._buckets.estimate_region(region)
        return float(min(max(raw, 0.0), 1.0))

    def observe(self, predicate: PredicateLike, selectivity: float) -> None:
        if not (0.0 <= selectivity <= 1.0):
            raise EstimatorError("selectivity must be in [0, 1]")
        region = self._region(predicate)
        self._observed_count += 1
        if region.is_empty:
            return
        if self._max_buckets is None or len(self._buckets) < self._max_buckets:
            drill(self._buckets, region.boxes)
        self._queries.append((region, selectivity))
        self._refit()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refit(self) -> None:
        """Solve the diagonal-Q penalised QP via the Woodbury identity.

        The objective is ``Σ_j w_j² / |G_j| + λ‖A w − s‖²`` where ``A``
        includes the implicit whole-domain constraint (total mass = 1).
        With ``D = diag(1/|G_j|)`` the minimiser is

        ``w = λ D⁻¹ Aᵀ (I + λ A D⁻¹ Aᵀ)⁻¹ s``

        which only requires solving an ``(n+1) × (n+1)`` system.
        """
        volumes = self._buckets.volumes
        positive = volumes > 0
        if not positive.any():
            return
        boxes = self._buckets.boxes

        rows = [np.ones(len(boxes))]  # whole-domain constraint: Σ w_j = 1
        targets = [1.0]
        for region, selectivity in self._queries:
            overlaps = region.intersection_volumes(boxes)
            fractions = np.divide(
                overlaps, volumes, out=np.zeros_like(overlaps), where=positive
            )
            rows.append(fractions)
            targets.append(selectivity)
        A = np.vstack(rows)
        s = np.array(targets)

        d_inverse = np.where(positive, volumes, 0.0)  # D⁻¹ = diag(|G_j|)
        lam = self._penalty
        ad = A * d_inverse[None, :]
        gram = np.eye(A.shape[0]) + lam * (ad @ A.T)
        try:
            middle = np.linalg.solve(gram, s)
        except np.linalg.LinAlgError:
            middle, *_ = np.linalg.lstsq(gram, s, rcond=None)
        weights = lam * (ad.T @ middle)

        if self._clip_negative:
            weights = np.clip(weights, 0.0, None)
            total = weights.sum()
            if total > 0:
                weights = weights / total
        self._buckets.set_frequencies(weights)

    def __repr__(self) -> str:
        return (
            f"IsomerQP(buckets={self.bucket_count}, observed={self._observed_count})"
        )
