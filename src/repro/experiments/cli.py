"""Command-line runner for the evaluation experiments.

Lets a user regenerate any table or figure without writing Python:

```
python -m repro table3 --scale small
python -m repro figure6 --queries 50 100 200
python -m repro figure7 --full
```

Each sub-command runs the corresponding module under
:mod:`repro.experiments` and prints the rendered rows/series.
"""

from __future__ import annotations

import argparse
import threading
import time
from collections.abc import Sequence

from repro.exceptions import ExperimentError
from repro.experiments.ablations import (
    AblationRecord,
    run_anchor_points_ablation,
    run_clipping_ablation,
    run_penalty_ablation,
    run_solver_ablation,
)
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.table3 import run_table3

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the experiment runner."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the QuickSel paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="experiment", required=True)

    table3 = subparsers.add_parser("table3", help="Table 3a/3b: QuickSel vs ISOMER")
    table3.add_argument("--scale", choices=("small", "medium", "paper"), default="small")
    table3.add_argument("--rows", type=int, default=30_000)

    figure3 = subparsers.add_parser("figure3", help="Figure 3: end-to-end comparison")
    figure4 = subparsers.add_parser("figure4", help="Figure 4: model effectiveness")
    for sub in (figure3, figure4):
        sub.add_argument("--rows", type=int, default=30_000)
        sub.add_argument(
            "--checkpoints", type=int, nargs="+", default=[10, 25, 50]
        )
        sub.add_argument("--fast", action="store_true", help="skip the slow histogram baselines")

    figure5 = subparsers.add_parser("figure5", help="Figure 5: vs scan-based methods under drift")
    figure5.add_argument("--rows", type=int, default=50_000)
    figure5.add_argument("--phases", type=int, default=10)

    figure6 = subparsers.add_parser("figure6", help="Figure 6: QP solver comparison")
    figure6.add_argument("--queries", type=int, nargs="+", default=[50, 100, 200, 400])
    figure6.add_argument("--scipy", action="store_true", help="include the SciPy SLSQP solver")

    figure7 = subparsers.add_parser("figure7", help="Figure 7: robustness panels")
    figure7.add_argument("--rows", type=int, default=30_000)
    figure7.add_argument("--full", action="store_true", help="run the full (slower) sweeps")

    ablations = subparsers.add_parser("ablations", help="design-choice ablations")
    ablations.add_argument(
        "--which",
        choices=("penalty", "clipping", "anchors", "solver", "all"),
        default="all",
    )

    worker = subparsers.add_parser(
        "worker", help="run one out-of-process serving shard"
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    worker.add_argument("--shard-id", default="worker")
    worker.add_argument("--cache-capacity", type=int, default=4096)
    worker.add_argument(
        "--scheduler-mode", choices=("background", "inline"), default="background"
    )
    worker.add_argument(
        "--run-seconds",
        type=float,
        default=None,
        help="exit after this many seconds (tests/smoke runs)",
    )

    serve = subparsers.add_parser(
        "serve", help="run the async gateway over a worker fleet"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--worker",
        action="append",
        default=[],
        metavar="NAME=HOST:PORT",
        help="a worker to route over (repeatable); when omitted, "
        "--spawn-workers local worker processes are launched",
    )
    serve.add_argument(
        "--spawn-workers",
        type=int,
        default=0,
        help="launch N local worker processes instead of dialling --worker",
    )
    serve.add_argument("--request-timeout", type=float, default=30.0)
    serve.add_argument(
        "--health-interval",
        type=float,
        default=None,
        help="seconds between worker health pings (off by default)",
    )
    serve.add_argument(
        "--run-seconds",
        type=float,
        default=None,
        help="exit after this many seconds (tests/smoke runs)",
    )

    supervise = subparsers.add_parser(
        "supervise",
        help="run a fault-tolerant fleet: checkpointing workers, a "
        "buffering gateway, and a supervisor that respawns crashes",
    )
    supervise.add_argument("--host", default="127.0.0.1")
    supervise.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    supervise.add_argument(
        "--workers", type=int, default=2, help="local worker processes"
    )
    supervise.add_argument(
        "--checkpoint-dir",
        required=True,
        help="directory for per-worker checkpoint stores (created)",
    )
    supervise.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        help="checkpoint a key every N accepted observations",
    )
    supervise.add_argument("--request-timeout", type=float, default=30.0)
    supervise.add_argument(
        "--health-interval",
        type=float,
        default=0.5,
        help="seconds between worker health pings",
    )
    supervise.add_argument(
        "--poll-interval",
        type=float,
        default=0.25,
        help="seconds between supervisor liveness sweeps",
    )
    supervise.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        help="consecutive crashes before a worker is given up",
    )
    supervise.add_argument(
        "--write-buffer",
        type=int,
        default=256,
        help="writes buffered per key while a worker is down "
        "(0 disables buffering)",
    )
    supervise.add_argument(
        "--run-seconds",
        type=float,
        default=None,
        help="exit after this many seconds (tests/smoke runs)",
    )
    return parser


def _run_ablations(which: str) -> str:
    parts = []
    if which in ("penalty", "all"):
        parts.append(AblationRecord.render(run_penalty_ablation(), "Ablation: penalty λ"))
    if which in ("clipping", "all"):
        parts.append(
            AblationRecord.render(run_clipping_ablation(), "Ablation: clip negative weights")
        )
    if which in ("anchors", "all"):
        parts.append(
            AblationRecord.render(
                run_anchor_points_ablation(), "Ablation: anchor points per predicate"
            )
        )
    if which in ("solver", "all"):
        parts.append(AblationRecord.render(run_solver_ablation(), "Ablation: solver"))
    return "\n\n".join(parts)


def _parse_worker_spec(spec: str) -> tuple[str, tuple[str, int]]:
    """Parse one ``NAME=HOST:PORT`` worker spec."""
    name, separator, address = spec.partition("=")
    host, _, port = address.rpartition(":")
    if not separator or not name or not host or not port.isdigit():
        raise ExperimentError(
            f"worker spec {spec!r} is not of the form NAME=HOST:PORT"
        )
    return name, (host, int(port))


def _run_worker_command(args: argparse.Namespace) -> str:
    """``python -m repro worker``: one out-of-process serving shard."""
    from repro.net import WorkerServer

    server = WorkerServer(
        host=args.host,
        port=args.port,
        shard_id=args.shard_id,
        cache_capacity=args.cache_capacity,
        scheduler_mode=args.scheduler_mode,
    )
    server.start()
    print(
        f"worker {args.shard_id!r} serving on {server.host}:{server.port}",
        flush=True,
    )
    try:
        server.wait(args.run_seconds)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return f"worker {args.shard_id!r} stopped"


def _run_serve_command(args: argparse.Namespace) -> str:
    """``python -m repro serve``: the gateway over a worker fleet."""
    from repro.net import GatewayServer, WorkerProcess

    spawned: list[WorkerProcess] = []
    if args.worker:
        workers = dict(_parse_worker_spec(spec) for spec in args.worker)
    elif args.spawn_workers > 0:
        for index in range(args.spawn_workers):
            spawned.append(WorkerProcess(shard_id=f"worker-{index}"))
        workers = {worker.shard_id: worker.address for worker in spawned}
    else:
        raise ExperimentError(
            "serve needs at least one --worker NAME=HOST:PORT or "
            "--spawn-workers N"
        )
    server = GatewayServer(
        workers,
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
        health_interval=args.health_interval,
    )
    try:
        server.start()
    except BaseException:
        for worker in spawned:
            worker.terminate()
        raise
    print(
        f"gateway serving on {server.host}:{server.port} "
        f"over {len(workers)} worker(s)",
        flush=True,
    )
    try:
        if args.run_seconds is None:
            threading.Event().wait()
        else:
            time.sleep(args.run_seconds)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        for worker in spawned:
            try:
                worker.request_shutdown()
            except Exception:
                worker.terminate()
    return f"gateway stopped ({len(workers)} worker(s))"


def _run_supervise_command(args: argparse.Namespace) -> str:
    """``python -m repro supervise``: a self-healing local fleet."""
    import os

    from repro.net import FleetSupervisor, GatewayServer, WorkerProcess

    if args.workers < 1:
        raise ExperimentError("supervise needs at least one worker")

    processes: dict[str, WorkerProcess] = {}

    def spawn(index: int) -> WorkerProcess:
        shard_id = f"worker-{index}"
        process = WorkerProcess(
            shard_id=shard_id,
            checkpoint_dir=os.path.join(args.checkpoint_dir, shard_id),
            checkpoint_every=args.checkpoint_every,
        )
        processes[shard_id] = process
        return process

    spawned = [spawn(index) for index in range(args.workers)]
    workers = {worker.shard_id: worker.address for worker in spawned}
    server = GatewayServer(
        workers,
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
        health_interval=args.health_interval,
        write_buffer_capacity=args.write_buffer,
    )
    try:
        server.start()
    except BaseException:
        for worker in spawned:
            worker.terminate()
        raise
    supervisor = FleetSupervisor(
        gateway=server,
        poll_interval=args.poll_interval,
        max_restarts=args.max_restarts,
    )
    for index, worker in enumerate(spawned):
        supervisor.manage(
            worker, (lambda i=index: spawn(i)), name=worker.shard_id
        )
    supervisor.start()
    print(
        f"supervised gateway on {server.host}:{server.port} over "
        f"{len(workers)} worker(s), checkpoints in {args.checkpoint_dir}",
        flush=True,
    )
    try:
        if args.run_seconds is None:
            threading.Event().wait()
        else:
            time.sleep(args.run_seconds)
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.close()
        server.close()
        # `processes` holds the *current* handle per shard (the spawn
        # factory replaces entries on respawn), so this reaches workers
        # the supervisor restarted, not just the originals.
        for worker in processes.values():
            try:
                worker.request_shutdown()
            except Exception:
                worker.terminate()
    return f"supervised fleet stopped ({len(workers)} worker(s))"


def main(argv: Sequence[str] | None = None) -> str:
    """Run the selected experiment and return (and print) its report."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "worker":
        report = _run_worker_command(args)
        print(report)
        return report
    if args.experiment == "serve":
        report = _run_serve_command(args)
        print(report)
        return report
    if args.experiment == "supervise":
        report = _run_supervise_command(args)
        print(report)
        return report

    if args.experiment == "table3":
        report = run_table3(scale=args.scale, row_count=args.rows).render()
    elif args.experiment == "figure3":
        report = run_figure3(
            checkpoints=tuple(args.checkpoints),
            row_count=args.rows,
            include_slow=not args.fast,
        ).render()
    elif args.experiment == "figure4":
        report = run_figure4(
            checkpoints=tuple(args.checkpoints),
            row_count=args.rows,
            include_slow=not args.fast,
        ).render()
    elif args.experiment == "figure5":
        report = run_figure5(initial_rows=args.rows, phases=args.phases).render()
    elif args.experiment == "figure6":
        report = run_figure6(
            query_counts=tuple(args.queries), include_scipy=args.scipy
        ).render()
    elif args.experiment == "figure7":
        report = run_figure7(small=not args.full, row_count=args.rows).render()
    else:  # ablations
        report = _run_ablations(args.which)

    print(report)
    return report
