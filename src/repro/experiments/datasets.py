"""Prepared dataset + workload bundles for the evaluation experiments.

Each experiment in Section 5 uses one of three workloads (DMV, Instacart,
Gaussian) with a stream of training queries and 100 held-out test queries.
This module packages those ingredients so the per-figure modules only
describe *what* they sweep, not how the data is produced.

Row counts default to laptop-scale (the originals are 11.9 M and 3.4 M
rows); since every estimator only ever sees selectivities — fractions —
the scale does not change the comparison, only the time to label queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.exceptions import ExperimentError
from repro.experiments.harness import Feedback
from repro.workloads.dmv import dmv_dataset
from repro.workloads.instacart import instacart_dataset
from repro.workloads.queries import (
    RandomRangeQueryGenerator,
    dmv_queries,
    instacart_queries,
    select_with_min_selectivity,
)
from repro.workloads.synthetic import gaussian_dataset

__all__ = ["WorkloadBundle", "make_bundle"]


@dataclass(frozen=True)
class WorkloadBundle:
    """A dataset with labelled training and test query streams."""

    name: str
    rows: np.ndarray
    domain: Hyperrectangle
    train: list[Feedback]
    test: list[Feedback]

    @property
    def row_count(self) -> int:
        """Number of data rows in the bundle."""
        return int(self.rows.shape[0])


#: Queries below this true selectivity are excluded from the evaluation
#: workloads: the paper's relative-error metric (÷ max(true, 0.001)) makes
#: near-empty queries dominate the mean for every estimator, which obscures
#: the comparison the tables and figures are about.
MIN_QUERY_SELECTIVITY = 0.005

#: How many extra candidate queries to draw per requested query when
#: enforcing the selectivity floor.
_OVERSAMPLE = 4


def make_bundle(
    name: str,
    train_queries: int,
    test_queries: int = 100,
    row_count: int | None = None,
    seed: int = 0,
    correlation: float = 0.5,
    dimension: int = 2,
    min_selectivity: float = MIN_QUERY_SELECTIVITY,
) -> WorkloadBundle:
    """Build a labelled workload bundle by dataset name.

    Args:
        name: "dmv", "instacart", or "gaussian".
        train_queries: length of the training query stream.
        test_queries: held-out queries used for error measurement.
        row_count: dataset size (defaults: 100k dmv/instacart, 50k gaussian).
        seed: base RNG seed (data, train queries, and test queries use
            distinct derived seeds).
        correlation: correlation of the Gaussian dataset (ignored otherwise).
        dimension: dimensionality of the Gaussian dataset (ignored otherwise).
        min_selectivity: floor on each query's true selectivity (see
            :data:`MIN_QUERY_SELECTIVITY`).

    Returns:
        A :class:`WorkloadBundle`.
    """
    lowered = name.lower()
    train_candidates = train_queries * _OVERSAMPLE
    test_candidates = test_queries * _OVERSAMPLE
    if lowered == "dmv":
        rows = dmv_dataset(row_count or 100_000, seed=seed).rows
        from repro.workloads.dmv import DMV_SCHEMA

        domain = DMV_SCHEMA.domain()
        train_predicates = dmv_queries(train_candidates, seed=seed + 1, domain=domain)
        test_predicates = dmv_queries(test_candidates, seed=seed + 2, domain=domain)
    elif lowered == "instacart":
        rows = instacart_dataset(row_count or 100_000, seed=seed).rows
        from repro.workloads.instacart import INSTACART_SCHEMA

        domain = INSTACART_SCHEMA.domain()
        train_predicates = instacart_queries(
            train_candidates, seed=seed + 1, domain=domain
        )
        test_predicates = instacart_queries(
            test_candidates, seed=seed + 2, domain=domain
        )
    elif lowered == "gaussian":
        dataset = gaussian_dataset(
            row_count or 50_000,
            dimension=dimension,
            correlation=correlation,
            seed=seed,
        )
        rows = dataset.rows
        domain = dataset.domain
        train_generator = RandomRangeQueryGenerator(domain, seed=seed + 1)
        test_generator = RandomRangeQueryGenerator(domain, seed=seed + 2)
        train_predicates = train_generator.generate(train_candidates)
        test_predicates = test_generator.generate(test_candidates)
    else:
        raise ExperimentError(
            f"unknown workload {name!r}; expected dmv, instacart, or gaussian"
        )

    return WorkloadBundle(
        name=lowered,
        rows=rows,
        domain=domain,
        train=select_with_min_selectivity(
            train_predicates, rows, train_queries, min_selectivity=min_selectivity
        ),
        test=select_with_min_selectivity(
            test_predicates, rows, test_queries, min_selectivity=min_selectivity
        ),
    )
