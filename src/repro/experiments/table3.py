"""Table 3: QuickSel vs ISOMER summary comparison.

Table 3a of the paper compares the per-query refinement time of ISOMER and
QuickSel at operating points where their errors are similar (ISOMER after
~150 queries vs QuickSel after ~700), reporting the speedup.  Table 3b
compares their absolute errors at operating points with similar training
time (ISOMER after ~60 queries vs QuickSel after ~700), reporting the
error reduction.

We reproduce both tables on the synthetic DMV and Instacart stand-ins.
The default operating points are scaled down (pure-Python ISOMER is far
slower per query than the paper's Java implementation), but the reported
quantities are the same: error, per-query time, speedup, error reduction.
Pass ``scale="paper"`` to use the paper's query counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quicksel import QuickSel
from repro.estimators.isomer import Isomer
from repro.exceptions import ExperimentError
from repro.experiments.datasets import make_bundle
from repro.experiments.harness import evaluate, paper_config
from repro.experiments.reporting import format_table

__all__ = ["Table3Row", "Table3Result", "run_table3", "SCALES"]

#: Operating points per scale: (isomer efficiency, isomer accuracy, quicksel).
SCALES: dict[str, dict[str, int]] = {
    "small": {"isomer_efficiency": 40, "isomer_accuracy": 20, "quicksel": 200},
    "medium": {"isomer_efficiency": 80, "isomer_accuracy": 40, "quicksel": 400},
    "paper": {"isomer_efficiency": 150, "isomer_accuracy": 60, "quicksel": 700},
}


@dataclass(frozen=True)
class Table3Row:
    """One (dataset, method) row of Table 3a/3b."""

    dataset: str
    method: str
    observed_queries: int
    parameter_count: int
    relative_error_pct: float
    absolute_error: float
    per_query_ms: float


@dataclass(frozen=True)
class Table3Result:
    """Both halves of Table 3 plus the derived speedup / error reduction."""

    efficiency_rows: list[Table3Row]
    accuracy_rows: list[Table3Row]
    speedups: dict[str, float]
    error_reductions_pct: dict[str, float]

    def render(self) -> str:
        """Format the result the way the paper's Table 3 is laid out."""
        parts = [
            format_table(
                self.efficiency_rows,
                title="Table 3a: efficiency comparison for similar errors",
            ),
            "Speedups (ISOMER per-query time / QuickSel per-query time): "
            + ", ".join(f"{k}: {v:.1f}x" for k, v in self.speedups.items()),
            format_table(
                self.accuracy_rows,
                title="Table 3b: accuracy comparison for similar training time",
            ),
            "Error reduction (1 - QuickSel abs err / ISOMER abs err): "
            + ", ".join(
                f"{k}: {v:.1f}%" for k, v in self.error_reductions_pct.items()
            ),
        ]
        return "\n\n".join(parts)


def _train_and_measure(
    estimator, bundle, query_count: int
) -> tuple[float, float, float, float, int]:
    """Train on the first ``query_count`` queries; return metrics."""
    import time

    train_seconds = 0.0
    for predicate, selectivity in bundle.train[:query_count]:
        start = time.perf_counter()
        estimator.observe(predicate, selectivity)
        train_seconds += time.perf_counter() - start
    if isinstance(estimator, QuickSel):
        start = time.perf_counter()
        estimator.refit()
        train_seconds += time.perf_counter() - start
    relative, absolute, _ = evaluate(estimator, bundle.test)
    per_query_ms = train_seconds / query_count * 1000.0
    return relative, absolute, train_seconds, per_query_ms, estimator.parameter_count


def run_table3(
    scale: str = "small",
    row_count: int | None = None,
    test_queries: int = 100,
    seed: int = 0,
) -> Table3Result:
    """Run the Table 3 comparison on the DMV and Instacart stand-ins."""
    if scale not in SCALES:
        raise ExperimentError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}")
    points = SCALES[scale]

    efficiency_rows: list[Table3Row] = []
    accuracy_rows: list[Table3Row] = []
    speedups: dict[str, float] = {}
    error_reductions: dict[str, float] = {}

    for dataset in ("dmv", "instacart"):
        bundle = make_bundle(
            dataset,
            train_queries=max(points["quicksel"], points["isomer_efficiency"]),
            test_queries=test_queries,
            row_count=row_count,
            seed=seed,
        )

        # --- Table 3a: efficiency at similar error -----------------------
        isomer = Isomer(bundle.domain)
        iso_rel, iso_abs, _, iso_ms, iso_params = _train_and_measure(
            isomer, bundle, points["isomer_efficiency"]
        )
        quicksel = QuickSel(bundle.domain, paper_config(random_seed=seed))
        qs_rel, qs_abs, _, qs_ms, qs_params = _train_and_measure(
            quicksel, bundle, points["quicksel"]
        )
        efficiency_rows.extend(
            [
                Table3Row(
                    dataset, "ISOMER", points["isomer_efficiency"], iso_params,
                    iso_rel, iso_abs, iso_ms,
                ),
                Table3Row(
                    dataset, "QuickSel", points["quicksel"], qs_params,
                    qs_rel, qs_abs, qs_ms,
                ),
            ]
        )
        speedups[dataset] = iso_ms / qs_ms if qs_ms > 0 else float("inf")

        # --- Table 3b: accuracy at similar training time ------------------
        isomer_small = Isomer(bundle.domain)
        _, iso_small_abs, _, iso_small_ms, iso_small_params = _train_and_measure(
            isomer_small, bundle, points["isomer_accuracy"]
        )
        quicksel_b = QuickSel(bundle.domain, paper_config(random_seed=seed + 1))
        _, qs_b_abs, _, qs_b_ms, qs_b_params = _train_and_measure(
            quicksel_b, bundle, points["quicksel"]
        )
        accuracy_rows.extend(
            [
                Table3Row(
                    dataset, "ISOMER", points["isomer_accuracy"], iso_small_params,
                    0.0, iso_small_abs, iso_small_ms,
                ),
                Table3Row(
                    dataset, "QuickSel", points["quicksel"], qs_b_params,
                    0.0, qs_b_abs, qs_b_ms,
                ),
            ]
        )
        if iso_small_abs > 0:
            error_reductions[dataset] = (1.0 - qs_b_abs / iso_small_abs) * 100.0
        else:
            error_reductions[dataset] = 0.0

    return Table3Result(
        efficiency_rows=efficiency_rows,
        accuracy_rows=accuracy_rows,
        speedups=speedups,
        error_reductions_pct=error_reductions,
    )
