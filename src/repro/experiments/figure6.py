"""Figure 6: standard QP vs QuickSel's analytic (penalised) QP.

Section 5.4 compares two ways of computing the mixture weights for the
same training problem: solving the constrained quadratic program of
Theorem 1 with an iterative solver (the paper uses cvxopt; we use a
projected-gradient method and optionally SciPy's SLSQP) versus the
closed-form solution of Problem 3.  Figure 6 plots runtime against the
number of observed queries; the analytic solution's advantage grows with
the problem size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.subpopulation import SubpopulationBuilder
from repro.core.training import ObservedQuery, build_problem
from repro.estimators.base import as_region
from repro.experiments.datasets import make_bundle
from repro.experiments.harness import paper_config
from repro.experiments.reporting import format_series
from repro.solvers.analytic import solve_penalized_qp
from repro.solvers.projected_gradient import solve_projected_gradient
from repro.solvers.scipy_qp import solve_constrained_qp

__all__ = ["Figure6Point", "Figure6Result", "run_figure6"]


@dataclass(frozen=True)
class Figure6Point:
    """Runtime of one solver at one problem size."""

    solver: str
    observed_queries: int
    subpopulations: int
    solve_seconds: float
    constraint_residual: float


@dataclass(frozen=True)
class Figure6Result:
    """All runtime measurements plus the derived series."""

    points: list[Figure6Point]

    def runtime_series(self) -> dict[str, list[tuple[float, float]]]:
        """Observed queries -> solve time (ms), per solver."""
        series: dict[str, list[tuple[float, float]]] = {}
        for point in self.points:
            series.setdefault(point.solver, []).append(
                (point.observed_queries, point.solve_seconds * 1000.0)
            )
        return series

    def speedup_at(self, observed_queries: int) -> float:
        """Standard-QP time divided by analytic time at one problem size."""
        analytic = [
            p.solve_seconds
            for p in self.points
            if p.solver == "QuickSel's QP (analytic)"
            and p.observed_queries == observed_queries
        ]
        standard = [
            p.solve_seconds
            for p in self.points
            if p.solver == "Standard QP (projected gradient)"
            and p.observed_queries == observed_queries
        ]
        if not analytic or not standard or analytic[0] == 0:
            return float("nan")
        return standard[0] / analytic[0]

    def render(self) -> str:
        """Text rendering of the runtime comparison."""
        return format_series(
            self.runtime_series(),
            x_label="observed queries",
            y_label="solve time (ms)",
            title="Figure 6: standard QP vs QuickSel's analytic QP",
        )


def run_figure6(
    query_counts: tuple[int, ...] = (50, 100, 200, 400),
    include_scipy: bool = False,
    max_scipy_queries: int = 100,
    row_count: int = 20_000,
    seed: int = 0,
) -> Figure6Result:
    """Time the solvers on increasingly large training problems.

    The training problems are built exactly as QuickSel would build them
    for a Gaussian workload: real subpopulations, real overlap matrices —
    only the solver differs.
    """
    bundle = make_bundle(
        "gaussian",
        train_queries=max(query_counts),
        test_queries=1,
        row_count=row_count,
        seed=seed,
        correlation=0.5,
    )
    config = paper_config(random_seed=seed)
    builder = SubpopulationBuilder(bundle.domain, config)
    rng = np.random.default_rng(seed)

    points: list[Figure6Point] = []
    for count in query_counts:
        feedback = bundle.train[:count]
        regions = [as_region(predicate, bundle.domain) for predicate, _ in feedback]
        queries = [
            ObservedQuery(region=region, selectivity=selectivity)
            for region, (_, selectivity) in zip(regions, feedback)
        ]
        subpopulations = builder.build(regions, rng)
        problem = build_problem(
            subpopulations, queries, domain=bundle.domain, include_default_query=True
        )

        start = time.perf_counter()
        analytic = solve_penalized_qp(problem.Q, problem.A, problem.s)
        analytic_seconds = time.perf_counter() - start
        points.append(
            Figure6Point(
                solver="QuickSel's QP (analytic)",
                observed_queries=count,
                subpopulations=len(subpopulations),
                solve_seconds=analytic_seconds,
                constraint_residual=analytic.constraint_residual,
            )
        )

        start = time.perf_counter()
        iterative = solve_projected_gradient(problem.Q, problem.A, problem.s)
        iterative_seconds = time.perf_counter() - start
        points.append(
            Figure6Point(
                solver="Standard QP (projected gradient)",
                observed_queries=count,
                subpopulations=len(subpopulations),
                solve_seconds=iterative_seconds,
                constraint_residual=iterative.constraint_residual,
            )
        )

        if include_scipy and count <= max_scipy_queries:
            start = time.perf_counter()
            scipy_result = solve_constrained_qp(problem.Q, problem.A, problem.s)
            scipy_seconds = time.perf_counter() - start
            points.append(
                Figure6Point(
                    solver="Standard QP (SciPy SLSQP)",
                    observed_queries=count,
                    subpopulations=len(subpopulations),
                    solve_seconds=scipy_seconds,
                    constraint_residual=scipy_result.constraint_residual,
                )
            )
    return Figure6Result(points=points)
