"""Generic experiment driver for query-driven selectivity estimators.

All of Table 3, Figure 3 and Figure 4 share one experimental shape: feed a
growing stream of observed queries (with their true selectivities) to each
estimator, and after every checkpoint measure (a) the estimation error on a
held-out test set, (b) the cumulative and per-query training time, and (c)
the model size.  :func:`sweep_query_driven` runs that shape once per
estimator and returns one :class:`TrialRecord` per (estimator, checkpoint),
which the per-figure modules then slice into the paper's tables and series.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import QuickSelConfig
from repro.core.geometry import Hyperrectangle
from repro.core.predicate import Predicate
from repro.core.quicksel import QuickSel
from repro.estimators.base import QueryDrivenEstimator
from repro.exceptions import ExperimentError
from repro.experiments.metrics import mean_absolute_error, mean_relative_error

__all__ = [
    "TrialRecord",
    "Feedback",
    "evaluate",
    "paper_config",
    "sweep_query_driven",
]

Feedback = tuple[Predicate, float]
LearningEstimator = QueryDrivenEstimator | QuickSel
EstimatorFactory = Callable[[Hyperrectangle], LearningEstimator]


def paper_config(**overrides) -> QuickSelConfig:
    """A :class:`QuickSelConfig` pinned to the paper's training pipeline.

    The production default (``incremental_training=True``) reuses
    subpopulation centres between refits and draws anchors from a
    reservoir; the figure/table reproductions instead keep the paper's
    from-scratch pipeline — fresh anchors over every observed region and
    ``m = min(4n, 4000)`` tracking every refit — so their outputs stay
    faithful to the algorithm the paper evaluates.
    """
    overrides.setdefault("incremental_training", False)
    return QuickSelConfig(**overrides)


@dataclass(frozen=True)
class TrialRecord:
    """One estimator evaluated at one observed-query checkpoint.

    Attributes:
        method: estimator name (as used in the paper's figures).
        dataset: dataset label.
        observed_queries: number of training queries observed so far.
        parameter_count: model size at this checkpoint.
        relative_error_pct: mean relative error on the test set (percent).
        absolute_error: mean absolute error on the test set.
        train_seconds_total: cumulative training time since the start.
        per_query_ms: average per-query training (refinement) time in ms.
        estimate_ms: average per-estimate latency on the test set in ms.
    """

    method: str
    dataset: str
    observed_queries: int
    parameter_count: int
    relative_error_pct: float
    absolute_error: float
    train_seconds_total: float
    per_query_ms: float
    estimate_ms: float


def evaluate(
    estimator: LearningEstimator, test_feedback: Sequence[Feedback]
) -> tuple[float, float, float]:
    """Return (relative error %, absolute error, mean per-estimate ms)."""
    if not test_feedback:
        raise ExperimentError("the test set must not be empty")
    truths = []
    estimates = []
    start = time.perf_counter()
    for predicate, true_selectivity in test_feedback:
        truths.append(true_selectivity)
        estimates.append(estimator.estimate(predicate))
    elapsed = time.perf_counter() - start
    return (
        mean_relative_error(truths, estimates),
        mean_absolute_error(truths, estimates),
        elapsed / len(test_feedback) * 1000.0,
    )


def sweep_query_driven(
    factories: dict[str, EstimatorFactory],
    domain: Hyperrectangle,
    train_feedback: Sequence[Feedback],
    test_feedback: Sequence[Feedback],
    checkpoints: Sequence[int],
    dataset: str = "dataset",
) -> list[TrialRecord]:
    """Train each estimator on a growing query stream, evaluating at checkpoints.

    Args:
        factories: mapping from method name to a factory building a fresh
            estimator for the given domain.
        domain: the data domain ``B_0``.
        train_feedback: the full ordered training stream (predicate, true
            selectivity); checkpoints index into this stream.
        test_feedback: held-out (predicate, true selectivity) pairs.
        checkpoints: increasing numbers of observed queries at which to
            evaluate (each must be <= len(train_feedback)).
        dataset: label recorded on every trial.

    Returns:
        One :class:`TrialRecord` per (method, checkpoint), in method order
        then checkpoint order.
    """
    checkpoints = sorted(set(int(c) for c in checkpoints))
    if not checkpoints:
        raise ExperimentError("at least one checkpoint is required")
    if checkpoints[0] < 1:
        raise ExperimentError("checkpoints must be >= 1")
    if checkpoints[-1] > len(train_feedback):
        raise ExperimentError(
            f"checkpoint {checkpoints[-1]} exceeds the training stream length "
            f"({len(train_feedback)})"
        )

    records: list[TrialRecord] = []
    for method, factory in factories.items():
        estimator = factory(domain)
        observed = 0
        train_seconds = 0.0
        for checkpoint in checkpoints:
            while observed < checkpoint:
                predicate, selectivity = train_feedback[observed]
                start = time.perf_counter()
                estimator.observe(predicate, selectivity)
                train_seconds += time.perf_counter() - start
                observed += 1
            # QuickSel refits lazily; charge the refit to training time so
            # per-query costs are comparable with the eager baselines.
            if isinstance(estimator, QuickSel):
                start = time.perf_counter()
                estimator.refit()
                train_seconds += time.perf_counter() - start
            relative, absolute, estimate_ms = evaluate(estimator, test_feedback)
            records.append(
                TrialRecord(
                    method=method,
                    dataset=dataset,
                    observed_queries=observed,
                    parameter_count=estimator.parameter_count,
                    relative_error_pct=relative,
                    absolute_error=absolute,
                    train_seconds_total=train_seconds,
                    per_query_ms=train_seconds / observed * 1000.0,
                    estimate_ms=estimate_ms,
                )
            )
    return records


def feedback_from_predicates(
    predicates: Sequence[Predicate], data: np.ndarray
) -> list[Feedback]:
    """Label a predicate list with exact selectivities over ``data``."""
    return [(predicate, predicate.selectivity(data)) for predicate in predicates]
