"""Error metrics used throughout the evaluation (Section 5.1, "Metrics").

The paper reports *relative errors* computed as

``(1/t) Σ_i |true_i − est_i| / max(true_i, ε) × 100 %``   with ``ε = 0.001``

(the ``max`` guards against zero or near-zero true selectivities), and
*absolute errors* ``(1/t) Σ_i |true_i − est_i|`` for the accuracy-at-equal-
training-time comparison of Table 3b.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ExperimentError

__all__ = [
    "EPSILON",
    "relative_error",
    "absolute_error",
    "mean_relative_error",
    "mean_absolute_error",
]

#: The ε guard of the paper's relative-error definition.
EPSILON = 0.001


def relative_error(true_value: float, estimate: float, epsilon: float = EPSILON) -> float:
    """Relative error of one estimate, in percent."""
    if epsilon <= 0:
        raise ExperimentError("epsilon must be positive")
    return abs(true_value - estimate) / max(true_value, epsilon) * 100.0


def absolute_error(true_value: float, estimate: float) -> float:
    """Absolute error of one estimate."""
    return abs(true_value - estimate)


def _validate(true_values: Sequence[float], estimates: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    truths = np.asarray(true_values, dtype=float)
    guesses = np.asarray(estimates, dtype=float)
    if truths.shape != guesses.shape:
        raise ExperimentError(
            f"true values and estimates must align; got {truths.shape} vs {guesses.shape}"
        )
    if truths.size == 0:
        raise ExperimentError("cannot compute an error over zero queries")
    return truths, guesses


def mean_relative_error(
    true_values: Sequence[float],
    estimates: Sequence[float],
    epsilon: float = EPSILON,
) -> float:
    """Mean relative error over a test set, in percent."""
    truths, guesses = _validate(true_values, estimates)
    denominators = np.maximum(truths, epsilon)
    return float((np.abs(truths - guesses) / denominators).mean() * 100.0)


def mean_absolute_error(
    true_values: Sequence[float], estimates: Sequence[float]
) -> float:
    """Mean absolute error over a test set."""
    truths, guesses = _validate(true_values, estimates)
    return float(np.abs(truths - guesses).mean())
