"""Plain-text reporting helpers for the experiment harness.

Every experiment returns structured rows (dataclasses or dicts); these
helpers turn them into aligned text tables so the benchmark harness can
print the same rows/series the paper's tables and figures report.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import asdict, is_dataclass

__all__ = ["rows_to_dicts", "format_table", "format_series"]


def rows_to_dicts(rows: Sequence[object]) -> list[dict]:
    """Normalise dataclass or mapping rows to plain dicts."""
    result = []
    for row in rows:
        if is_dataclass(row) and not isinstance(row, type):
            result.append(asdict(row))
        elif isinstance(row, Mapping):
            result.append(dict(row))
        else:
            raise TypeError(f"cannot convert row of type {type(row).__name__}")
    return result


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[object],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    dict_rows = rows_to_dicts(rows)
    if not dict_rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(dict_rows[0].keys())
    header = list(columns)
    body = [
        [_format_value(row.get(column, ""), precision) for column in columns]
        for row in dict_rows
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for line in body:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render named (x, y) series — the text equivalent of a figure."""
    lines = []
    if title:
        lines.append(title)
    for name, points in series.items():
        lines.append(f"[{name}] ({x_label} -> {y_label})")
        for x, y in points:
            lines.append(
                f"  {_format_value(x, precision)} -> {_format_value(y, precision)}"
            )
    return "\n".join(lines)
