"""Figure 4: model-size growth and parameter efficiency.

Figure 4 compares the *models* rather than the end-to-end systems:

* (a)/(c) number of observed queries vs number of model parameters — shows
  ISOMER's bucket explosion against QuickSel's ``min(4n, 4000)`` rule,
* (b)/(d) number of model parameters vs relative error — shows that, for
  the same parameter budget, the mixture model is more accurate than the
  query-driven histograms.

The sweep is the same shape as Figure 3's, so this module reuses the
harness and simply slices the records differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import make_bundle
from repro.experiments.figure3 import default_factories
from repro.experiments.harness import TrialRecord, sweep_query_driven
from repro.experiments.reporting import format_series, format_table

__all__ = ["Figure4Result", "run_figure4"]


@dataclass(frozen=True)
class Figure4Result:
    """The sweep records plus the two derived series per dataset."""

    records: list[TrialRecord]

    def records_for(self, dataset: str) -> list[TrialRecord]:
        """Records restricted to one dataset."""
        return [r for r in self.records if r.dataset == dataset]

    def queries_vs_parameters(
        self, dataset: str
    ) -> dict[str, list[tuple[float, float]]]:
        """Panel (a)/(c): observed queries -> number of model parameters."""
        series: dict[str, list[tuple[float, float]]] = {}
        for record in self.records_for(dataset):
            series.setdefault(record.method, []).append(
                (record.observed_queries, record.parameter_count)
            )
        return series

    def parameters_vs_error(
        self, dataset: str
    ) -> dict[str, list[tuple[float, float]]]:
        """Panel (b)/(d): number of model parameters -> relative error (%)."""
        series: dict[str, list[tuple[float, float]]] = {}
        for record in self.records_for(dataset):
            series.setdefault(record.method, []).append(
                (record.parameter_count, record.relative_error_pct)
            )
        return series

    def render(self) -> str:
        """Text rendering of both panels for every dataset."""
        parts = [format_table(self.records, title="Figure 4 sweep records")]
        for dataset in sorted({record.dataset for record in self.records}):
            parts.append(
                format_series(
                    self.queries_vs_parameters(dataset),
                    x_label="observed queries",
                    y_label="model parameters",
                    title=f"Figure 4a/c [{dataset}]: #queries vs #parameters",
                )
            )
            parts.append(
                format_series(
                    self.parameters_vs_error(dataset),
                    x_label="model parameters",
                    y_label="relative error (%)",
                    title=f"Figure 4b/d [{dataset}]: #parameters vs error",
                )
            )
        return "\n\n".join(parts)


def run_figure4(
    datasets: tuple[str, ...] = ("dmv", "instacart"),
    checkpoints: tuple[int, ...] = (10, 25, 50, 75, 100),
    test_queries: int = 50,
    row_count: int | None = 50_000,
    include_slow: bool = True,
    seed: int = 0,
) -> Figure4Result:
    """Run the Figure 4 sweep (same shape as Figure 3)."""
    records: list[TrialRecord] = []
    for dataset in datasets:
        bundle = make_bundle(
            dataset,
            train_queries=max(checkpoints),
            test_queries=test_queries,
            row_count=row_count,
            seed=seed,
        )
        records.extend(
            sweep_query_driven(
                default_factories(seed=seed, include_slow=include_slow),
                bundle.domain,
                bundle.train,
                bundle.test,
                checkpoints,
                dataset=dataset,
            )
        )
    return Figure4Result(records=records)
