"""Figure 3: end-to-end comparison against query-driven histograms.

Figure 3 has three panels per dataset (DMV on the top row, Instacart on
the bottom):

* (a)/(d) number of observed queries vs per-query training time,
* (b)/(e) per-query training time vs relative error,
* (c)/(f) relative error vs total training time (ISOMER vs QuickSel).

All three are different slices of the same sweep: train STHoles, ISOMER,
ISOMER+QP, QueryModel, and QuickSel on a growing query stream and record
time/error/size at each checkpoint.  :func:`run_figure3` performs the
sweep and exposes the three series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.geometry import Hyperrectangle
from repro.core.quicksel import QuickSel
from repro.estimators.isomer import Isomer
from repro.estimators.isomer_qp import IsomerQP
from repro.estimators.query_model import QueryModel
from repro.estimators.stholes import STHoles
from repro.experiments.datasets import make_bundle
from repro.experiments.harness import (
    TrialRecord,
    paper_config,
    sweep_query_driven,
)
from repro.experiments.reporting import format_series, format_table

__all__ = ["Figure3Result", "run_figure3", "default_factories"]


def default_factories(seed: int = 0, include_slow: bool = True):
    """Estimator factories for the Figure 3/4 sweeps."""
    factories = {
        "QuickSel": lambda domain: QuickSel(domain, paper_config(random_seed=seed)),
        "QueryModel": lambda domain: QueryModel(domain),
    }
    if include_slow:
        factories.update(
            {
                "STHoles": lambda domain: STHoles(domain, max_buckets=2000),
                "ISOMER": lambda domain: Isomer(domain),
                "ISOMER+QP": lambda domain: IsomerQP(domain),
            }
        )
    return factories


@dataclass(frozen=True)
class Figure3Result:
    """The sweep records plus the three derived series per dataset."""

    records: list[TrialRecord]

    def records_for(self, dataset: str) -> list[TrialRecord]:
        """Records restricted to one dataset."""
        return [r for r in self.records if r.dataset == dataset]

    def queries_vs_time(self, dataset: str) -> dict[str, list[tuple[float, float]]]:
        """Panel (a)/(d): observed queries -> per-query training time (ms)."""
        series: dict[str, list[tuple[float, float]]] = {}
        for record in self.records_for(dataset):
            series.setdefault(record.method, []).append(
                (record.observed_queries, record.per_query_ms)
            )
        return series

    def time_vs_error(self, dataset: str) -> dict[str, list[tuple[float, float]]]:
        """Panel (b)/(e): per-query training time (ms) -> relative error (%)."""
        series: dict[str, list[tuple[float, float]]] = {}
        for record in self.records_for(dataset):
            series.setdefault(record.method, []).append(
                (record.per_query_ms, record.relative_error_pct)
            )
        return series

    def error_vs_time(self, dataset: str) -> dict[str, list[tuple[float, float]]]:
        """Panel (c)/(f): relative error (%) -> total training time (ms)."""
        series: dict[str, list[tuple[float, float]]] = {}
        for record in self.records_for(dataset):
            if record.method not in ("ISOMER", "QuickSel"):
                continue
            series.setdefault(record.method, []).append(
                (record.relative_error_pct, record.train_seconds_total * 1000.0)
            )
        return series

    def render(self) -> str:
        """Text rendering of all panels."""
        parts = [format_table(self.records, title="Figure 3 sweep records")]
        datasets = sorted({record.dataset for record in self.records})
        for dataset in datasets:
            parts.append(
                format_series(
                    self.queries_vs_time(dataset),
                    x_label="observed queries",
                    y_label="per-query time (ms)",
                    title=f"Figure 3a/d [{dataset}]: #queries vs time",
                )
            )
            parts.append(
                format_series(
                    self.time_vs_error(dataset),
                    x_label="per-query time (ms)",
                    y_label="relative error (%)",
                    title=f"Figure 3b/e [{dataset}]: time vs error",
                )
            )
            parts.append(
                format_series(
                    self.error_vs_time(dataset),
                    x_label="relative error (%)",
                    y_label="total training time (ms)",
                    title=f"Figure 3c/f [{dataset}]: error vs time",
                )
            )
        return "\n\n".join(parts)


def run_figure3(
    datasets: tuple[str, ...] = ("dmv", "instacart"),
    checkpoints: tuple[int, ...] = (10, 25, 50, 75, 100),
    test_queries: int = 50,
    row_count: int | None = 50_000,
    include_slow: bool = True,
    seed: int = 0,
) -> Figure3Result:
    """Run the Figure 3 sweep (scaled-down defaults; see module docstring)."""
    records: list[TrialRecord] = []
    for dataset in datasets:
        bundle = make_bundle(
            dataset,
            train_queries=max(checkpoints),
            test_queries=test_queries,
            row_count=row_count,
            seed=seed,
        )
        records.extend(
            sweep_query_driven(
                default_factories(seed=seed, include_slow=include_slow),
                bundle.domain,
                bundle.train,
                bundle.test,
                checkpoints,
                dataset=dataset,
            )
        )
    return Figure3Result(records=records)
