"""Figure 5: QuickSel vs periodically-updated scan-based methods under drift.

The paper's Figure 5 experiment runs a 1000-query stream over a Gaussian
table whose correlation drifts upward with every batch of inserted rows
(see :mod:`repro.workloads.shifts`).  Each method gets the same space
budget (100 parameters): AutoHist uses 100 histogram cells, AutoSample a
100-row sample, and QuickSel a mixture with 100 subpopulations.

* Panel (a): relative error over the query sequence — scan-based methods
  start ahead but go stale; QuickSel improves as it observes queries.
* Panel (b): model update time — scan-based refreshes re-scan the data,
  QuickSel's refits do not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.quicksel import QuickSel
from repro.estimators.auto_hist import AutoHist
from repro.estimators.auto_sample import AutoSample
from repro.experiments.harness import paper_config
from repro.experiments.metrics import mean_relative_error
from repro.experiments.reporting import format_series, format_table
from repro.workloads.shifts import CorrelationDriftScenario

__all__ = ["Figure5Point", "Figure5Result", "run_figure5"]


@dataclass(frozen=True)
class Figure5Point:
    """Error of one method over one block of the query stream."""

    method: str
    query_sequence_end: int
    correlation: float
    relative_error_pct: float


@dataclass(frozen=True)
class Figure5Result:
    """Per-block errors plus cumulative update times per method."""

    points: list[Figure5Point]
    update_seconds: dict[str, float]
    mean_error_pct: dict[str, float]

    def error_series(self) -> dict[str, list[tuple[float, float]]]:
        """Panel (a): query sequence number -> relative error (%)."""
        series: dict[str, list[tuple[float, float]]] = {}
        for point in self.points:
            series.setdefault(point.method, []).append(
                (point.query_sequence_end, point.relative_error_pct)
            )
        return series

    def render(self) -> str:
        """Text rendering of both panels."""
        update_rows = [
            {"method": method, "total_update_seconds": seconds}
            for method, seconds in self.update_seconds.items()
        ]
        mean_rows = [
            {"method": method, "mean_relative_error_pct": error}
            for method, error in self.mean_error_pct.items()
        ]
        return "\n\n".join(
            [
                format_series(
                    self.error_series(),
                    x_label="query sequence number",
                    y_label="relative error (%)",
                    title="Figure 5a: accuracy over the drifting query stream",
                ),
                format_table(update_rows, title="Figure 5b: model update time"),
                format_table(mean_rows, title="Mean error over the whole stream"),
            ]
        )


def run_figure5(
    initial_rows: int = 50_000,
    insert_rows: int = 10_000,
    queries_per_phase: int = 50,
    phases: int = 10,
    parameter_budget: int = 100,
    min_selectivity: float = 0.005,
    seed: int = 0,
) -> Figure5Result:
    """Run the drift experiment (scaled-down defaults, same schedule shape).

    ``min_selectivity`` drops near-empty queries from each phase before the
    error is computed, for the same reason the other experiment workloads
    enforce a selectivity floor (the relative-error metric explodes on
    queries that match almost nothing, for every estimator alike).
    """
    scenario = CorrelationDriftScenario(
        initial_rows=initial_rows,
        insert_rows=insert_rows,
        queries_per_phase=queries_per_phase,
        phases=phases,
        correlation_step=0.1,
        seed=seed,
    )
    data = scenario.initial_data()
    domain = scenario.domain

    # Mutable container so the scan-based data_source sees the latest data.
    state = {"data": data}

    auto_hist = AutoHist(
        domain, lambda: state["data"], bucket_budget=parameter_budget
    )
    auto_sample = AutoSample(
        domain, lambda: state["data"], sample_size=parameter_budget
    )
    quicksel = QuickSel(
        domain,
        paper_config(fixed_subpopulations=parameter_budget, random_seed=seed),
    )
    update_seconds = {"AutoHist": 0.0, "AutoSample": 0.0, "QuickSel": 0.0}

    start = time.perf_counter()
    auto_hist.refresh()
    update_seconds["AutoHist"] += time.perf_counter() - start
    start = time.perf_counter()
    auto_sample.refresh()
    update_seconds["AutoSample"] += time.perf_counter() - start

    points: list[Figure5Point] = []
    errors_all: dict[str, list[float]] = {
        "AutoHist": [],
        "AutoSample": [],
        "QuickSel": [],
    }
    processed = 0

    for phase in scenario.phases():
        if phase.new_rows.shape[0]:
            state["data"] = np.vstack([state["data"], phase.new_rows])
            inserted = phase.new_rows.shape[0]
            start = time.perf_counter()
            auto_hist.notify_modified(inserted)
            update_seconds["AutoHist"] += time.perf_counter() - start
            start = time.perf_counter()
            auto_sample.notify_modified(inserted)
            update_seconds["AutoSample"] += time.perf_counter() - start

        labelled = [
            (predicate, predicate.selectivity(state["data"]))
            for predicate in phase.queries
        ]
        kept = [pair for pair in labelled if pair[1] >= min_selectivity] or labelled
        phase_queries = [predicate for predicate, _ in kept]
        truths = [truth for _, truth in kept]
        estimators = {
            "AutoHist": auto_hist,
            "AutoSample": auto_sample,
            "QuickSel": quicksel,
        }
        for method, estimator in estimators.items():
            estimates = [estimator.estimate(p) for p in phase_queries]
            error = mean_relative_error(truths, estimates)
            errors_all[method].append(error)
            points.append(
                Figure5Point(
                    method=method,
                    query_sequence_end=processed + len(phase.queries),
                    correlation=phase.correlation,
                    relative_error_pct=error,
                )
            )

        # QuickSel learns from the queries it just served (its "update").
        start = time.perf_counter()
        for predicate, truth in zip(phase_queries, truths):
            quicksel.observe(predicate, truth)
        quicksel.refit()
        update_seconds["QuickSel"] += time.perf_counter() - start
        processed += len(phase.queries)

    mean_error = {
        method: float(np.mean(values)) for method, values in errors_all.items()
    }
    return Figure5Result(
        points=points, update_seconds=update_seconds, mean_error_pct=mean_error
    )
