"""Figure 7: robustness of QuickSel to data and workload characteristics.

Four panels (Section 5.6), all on the synthetic Gaussian workload:

* (a) data correlation 0…1 vs relative error — QuickSel's accuracy should
  be essentially flat,
* (b) workload shifts — error over the query sequence for random-shift,
  sliding-shift, and no-shift query streams,
* (c) number of model parameters vs error — the fixed-budget ablation of
  the ``min(4n, 4000)`` rule,
* (d) data dimension 1…10 vs error for AutoHist, AutoSample, and QuickSel
  — multidimensional histograms degrade with dimension, QuickSel and
  sampling should not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quicksel import QuickSel
from repro.estimators.auto_hist import AutoHist
from repro.estimators.auto_sample import AutoSample
from repro.experiments.harness import evaluate, paper_config
from repro.experiments.reporting import format_series
from repro.workloads.queries import (
    FixedRangeQueryGenerator,
    RandomRangeQueryGenerator,
    SlidingRangeQueryGenerator,
    filtered_feedback,
    labelled_feedback,
)
from repro.workloads.synthetic import gaussian_dataset

#: Selectivity floor for the Figure 7 workloads (same rationale as
#: :data:`repro.experiments.datasets.MIN_QUERY_SELECTIVITY`).
_MIN_SELECTIVITY = 0.005

__all__ = [
    "Figure7aPoint",
    "Figure7bPoint",
    "Figure7cPoint",
    "Figure7dPoint",
    "Figure7Result",
    "run_figure7a",
    "run_figure7b",
    "run_figure7c",
    "run_figure7d",
    "run_figure7",
]


@dataclass(frozen=True)
class Figure7aPoint:
    """Error at one data-correlation level."""

    correlation: float
    relative_error_pct: float


@dataclass(frozen=True)
class Figure7bPoint:
    """Error after a block of the query stream for one shift scenario."""

    scenario: str
    query_sequence_end: int
    relative_error_pct: float


@dataclass(frozen=True)
class Figure7cPoint:
    """Error for one fixed model-parameter budget."""

    parameter_count: int
    relative_error_pct: float


@dataclass(frozen=True)
class Figure7dPoint:
    """Error of one method at one data dimensionality."""

    method: str
    dimension: int
    relative_error_pct: float


@dataclass(frozen=True)
class Figure7Result:
    """All four panels of Figure 7."""

    correlation_points: list[Figure7aPoint]
    shift_points: list[Figure7bPoint]
    parameter_points: list[Figure7cPoint]
    dimension_points: list[Figure7dPoint]

    def render(self) -> str:
        """Text rendering of all four panels."""
        parts = []
        parts.append(
            format_series(
                {
                    "QuickSel": [
                        (p.correlation, p.relative_error_pct)
                        for p in self.correlation_points
                    ]
                },
                x_label="correlation",
                y_label="relative error (%)",
                title="Figure 7a: data correlation",
            )
        )
        shift_series: dict[str, list[tuple[float, float]]] = {}
        for point in self.shift_points:
            shift_series.setdefault(point.scenario, []).append(
                (point.query_sequence_end, point.relative_error_pct)
            )
        parts.append(
            format_series(
                shift_series,
                x_label="query sequence number",
                y_label="relative error (%)",
                title="Figure 7b: workload shift",
            )
        )
        parts.append(
            format_series(
                {
                    "QuickSel": [
                        (p.parameter_count, p.relative_error_pct)
                        for p in self.parameter_points
                    ]
                },
                x_label="model parameters",
                y_label="relative error (%)",
                title="Figure 7c: model parameter count",
            )
        )
        dim_series: dict[str, list[tuple[float, float]]] = {}
        for point in self.dimension_points:
            dim_series.setdefault(point.method, []).append(
                (point.dimension, point.relative_error_pct)
            )
        parts.append(
            format_series(
                dim_series,
                x_label="data dimension",
                y_label="relative error (%)",
                title="Figure 7d: data dimension",
            )
        )
        return "\n\n".join(parts)


def _train_quicksel(domain, train, config) -> QuickSel:
    estimator = QuickSel(domain, config)
    for predicate, selectivity in train:
        estimator.observe(predicate, selectivity)
    estimator.refit()
    return estimator


def run_figure7a(
    correlations: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    train_queries: int = 100,
    test_queries: int = 100,
    row_count: int = 50_000,
    seed: int = 0,
) -> list[Figure7aPoint]:
    """Panel (a): error vs data correlation."""
    points = []
    for correlation in correlations:
        # Correlation 1.0 makes the covariance singular; back off slightly.
        effective = min(correlation, 0.999)
        dataset = gaussian_dataset(
            row_count, dimension=2, correlation=effective, seed=seed
        )
        train_gen = RandomRangeQueryGenerator(dataset.domain, seed=seed + 1)
        test_gen = RandomRangeQueryGenerator(dataset.domain, seed=seed + 2)
        train = filtered_feedback(
            train_gen, dataset.rows, train_queries, min_selectivity=_MIN_SELECTIVITY
        )
        test = filtered_feedback(
            test_gen, dataset.rows, test_queries, min_selectivity=_MIN_SELECTIVITY
        )
        estimator = _train_quicksel(
            dataset.domain, train, paper_config(random_seed=seed)
        )
        relative, _, _ = evaluate(estimator, test)
        points.append(
            Figure7aPoint(correlation=correlation, relative_error_pct=relative)
        )
    return points


def run_figure7b(
    total_queries: int = 300,
    block: int = 50,
    row_count: int = 50_000,
    seed: int = 0,
) -> list[Figure7bPoint]:
    """Panel (b): error over the query sequence for three shift scenarios.

    Following the paper, the model is trained on queries 1..k and evaluated
    on the next block of queries from the same (shifting) stream.
    """
    dataset = gaussian_dataset(row_count, dimension=2, correlation=0.5, seed=seed)
    scenarios = {
        "Random shift": RandomRangeQueryGenerator(dataset.domain, seed=seed + 1),
        "Sliding shift": SlidingRangeQueryGenerator(
            dataset.domain, total=total_queries + block, seed=seed + 2
        ),
        "No shift": FixedRangeQueryGenerator(dataset.domain),
    }
    points = []
    for name, generator in scenarios.items():
        stream = labelled_feedback(
            generator.generate(total_queries + block), dataset.rows
        )
        estimator = QuickSel(dataset.domain, paper_config(random_seed=seed))
        observed = 0
        while observed + block <= total_queries:
            for predicate, selectivity in stream[observed : observed + block]:
                estimator.observe(predicate, selectivity)
            observed += block
            estimator.refit()
            test = stream[observed : observed + block]
            relative, _, _ = evaluate(estimator, test)
            points.append(
                Figure7bPoint(
                    scenario=name,
                    query_sequence_end=observed,
                    relative_error_pct=relative,
                )
            )
    return points


def run_figure7c(
    parameter_counts: tuple[int, ...] = (10, 50, 100, 200, 400, 800),
    train_queries: int = 200,
    test_queries: int = 100,
    row_count: int = 50_000,
    seed: int = 0,
) -> list[Figure7cPoint]:
    """Panel (c): error vs a fixed model-parameter budget."""
    dataset = gaussian_dataset(row_count, dimension=2, correlation=0.5, seed=seed)
    train_gen = RandomRangeQueryGenerator(dataset.domain, seed=seed + 1)
    test_gen = RandomRangeQueryGenerator(dataset.domain, seed=seed + 2)
    train = filtered_feedback(
        train_gen, dataset.rows, train_queries, min_selectivity=_MIN_SELECTIVITY
    )
    test = filtered_feedback(
        test_gen, dataset.rows, test_queries, min_selectivity=_MIN_SELECTIVITY
    )
    points = []
    for budget in parameter_counts:
        estimator = _train_quicksel(
            dataset.domain,
            train,
            paper_config(fixed_subpopulations=budget, random_seed=seed),
        )
        relative, _, _ = evaluate(estimator, test)
        points.append(
            Figure7cPoint(parameter_count=budget, relative_error_pct=relative)
        )
    return points


def run_figure7d(
    dimensions: tuple[int, ...] = (1, 2, 4, 6, 8, 10),
    budget: int = 1000,
    train_queries: int = 200,
    test_queries: int = 100,
    row_count: int = 50_000,
    seed: int = 0,
) -> list[Figure7dPoint]:
    """Panel (d): error vs data dimension for AutoHist, AutoSample, QuickSel.

    AutoHist gets ``budget`` histogram cells, AutoSample ``budget`` sampled
    rows, and QuickSel observes ``train_queries`` queries (the paper gives
    QuickSel 1000 observed queries; the scaled default keeps the same
    ordering while staying laptop-fast).
    """
    points = []
    for dimension in dimensions:
        dataset = gaussian_dataset(
            row_count, dimension=dimension, correlation=0.5, seed=seed
        )
        # Wider per-dimension ranges keep the joint selectivity of a
        # d-dimensional predicate non-vanishing as d grows (a predicate of
        # width 0.3 per dimension selects ~0.3^10 of a 10-d domain, which
        # would turn the experiment into the near-empty-query regime).
        train_gen = RandomRangeQueryGenerator(
            dataset.domain, min_width=0.4, max_width=0.8, seed=seed + 1
        )
        test_gen = RandomRangeQueryGenerator(
            dataset.domain, min_width=0.4, max_width=0.8, seed=seed + 2
        )
        train = filtered_feedback(
            train_gen, dataset.rows, train_queries, min_selectivity=_MIN_SELECTIVITY
        )
        test = filtered_feedback(
            test_gen, dataset.rows, test_queries, min_selectivity=_MIN_SELECTIVITY
        )

        auto_hist = AutoHist(dataset.domain, lambda: dataset.rows, bucket_budget=budget)
        auto_hist.refresh()
        auto_sample = AutoSample(
            dataset.domain, lambda: dataset.rows, sample_size=budget
        )
        auto_sample.refresh()
        quicksel = _train_quicksel(
            dataset.domain, train, paper_config(random_seed=seed)
        )

        for method, estimator in (
            ("AutoHist", auto_hist),
            ("AutoSample", auto_sample),
            ("QuickSel", quicksel),
        ):
            relative, _, _ = evaluate(estimator, test)
            points.append(
                Figure7dPoint(
                    method=method, dimension=dimension, relative_error_pct=relative
                )
            )
    return points


def run_figure7(
    seed: int = 0,
    row_count: int = 50_000,
    small: bool = True,
) -> Figure7Result:
    """Run all four panels (with smaller sweeps when ``small`` is True)."""
    if small:
        return Figure7Result(
            correlation_points=run_figure7a(
                correlations=(0.0, 0.5, 0.9),
                train_queries=60,
                test_queries=60,
                row_count=row_count,
                seed=seed,
            ),
            shift_points=run_figure7b(
                total_queries=150, block=50, row_count=row_count, seed=seed
            ),
            parameter_points=run_figure7c(
                parameter_counts=(10, 50, 200),
                train_queries=100,
                test_queries=60,
                row_count=row_count,
                seed=seed,
            ),
            dimension_points=run_figure7d(
                dimensions=(1, 2, 4, 8),
                budget=1000,
                train_queries=200,
                test_queries=60,
                row_count=row_count,
                seed=seed,
            ),
        )
    return Figure7Result(
        correlation_points=run_figure7a(row_count=row_count, seed=seed),
        shift_points=run_figure7b(row_count=row_count, seed=seed),
        parameter_points=run_figure7c(row_count=row_count, seed=seed),
        dimension_points=run_figure7d(row_count=row_count, seed=seed),
    )
