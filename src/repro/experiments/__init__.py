"""Experiment harness regenerating every table and figure of the evaluation.

One module per paper artefact:

* :mod:`repro.experiments.table3` — Table 3a/3b (QuickSel vs ISOMER),
* :mod:`repro.experiments.figure3` — Figure 3a–f (end-to-end comparison),
* :mod:`repro.experiments.figure4` — Figure 4a–d (model effectiveness),
* :mod:`repro.experiments.figure5` — Figure 5a/b (vs scan-based methods),
* :mod:`repro.experiments.figure6` — Figure 6 (QP solver comparison),
* :mod:`repro.experiments.figure7` — Figure 7a–d (robustness),
* :mod:`repro.experiments.ablations` — design-choice ablations.

Shared infrastructure lives in :mod:`repro.experiments.harness`
(training/evaluation sweeps), :mod:`repro.experiments.metrics` (the
paper's error definitions), :mod:`repro.experiments.datasets` (workload
bundles), and :mod:`repro.experiments.reporting` (text tables/series).
"""

from repro.experiments.ablations import (
    AblationRecord,
    run_anchor_points_ablation,
    run_clipping_ablation,
    run_penalty_ablation,
    run_solver_ablation,
)
from repro.experiments.datasets import WorkloadBundle, make_bundle
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.harness import TrialRecord, evaluate, sweep_query_driven
from repro.experiments.metrics import (
    EPSILON,
    absolute_error,
    mean_absolute_error,
    mean_relative_error,
    relative_error,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.table3 import Table3Result, run_table3

__all__ = [
    "EPSILON",
    "relative_error",
    "absolute_error",
    "mean_relative_error",
    "mean_absolute_error",
    "TrialRecord",
    "evaluate",
    "sweep_query_driven",
    "WorkloadBundle",
    "make_bundle",
    "format_table",
    "format_series",
    "Table3Result",
    "run_table3",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "Figure7Result",
    "run_figure7",
    "AblationRecord",
    "run_penalty_ablation",
    "run_clipping_ablation",
    "run_anchor_points_ablation",
    "run_solver_ablation",
]
