"""Ablations of QuickSel's design choices (beyond the paper's figures).

DESIGN.md lists the design decisions the paper fixes without a dedicated
experiment; these ablations quantify them on the Gaussian workload:

* **penalty λ** — Problem 3 uses λ = 1e6; sweeping it shows the trade
  between constraint satisfaction and numerical conditioning,
* **negative-weight clipping** — the analytic solution can produce small
  negative weights; clipping vs leaving them,
* **points per predicate** — the paper samples 10 anchor points inside
  each predicate (Section 3.3) and reports diminishing returns past 10,
* **solver choice** — analytic vs projected gradient vs SciPy SLSQP on
  identical problems (accuracy, not just runtime, which Figure 6 covers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import QuickSelConfig
from repro.core.quicksel import QuickSel
from repro.experiments.datasets import make_bundle
from repro.experiments.harness import evaluate, paper_config
from repro.experiments.reporting import format_table

__all__ = [
    "AblationRecord",
    "run_penalty_ablation",
    "run_clipping_ablation",
    "run_anchor_points_ablation",
    "run_solver_ablation",
]


@dataclass(frozen=True)
class AblationRecord:
    """Result of one ablation configuration."""

    ablation: str
    setting: str
    relative_error_pct: float
    absolute_error: float
    constraint_residual: float

    @staticmethod
    def render(records: list["AblationRecord"], title: str) -> str:
        """Format ablation records as a table."""
        return format_table(records, title=title)


def _run_config(
    config: QuickSelConfig,
    ablation: str,
    setting: str,
    train_queries: int,
    test_queries: int,
    row_count: int,
    seed: int,
) -> AblationRecord:
    bundle = make_bundle(
        "gaussian",
        train_queries=train_queries,
        test_queries=test_queries,
        row_count=row_count,
        seed=seed,
        correlation=0.5,
    )
    estimator = QuickSel(bundle.domain, config)
    for predicate, selectivity in bundle.train:
        estimator.observe(predicate, selectivity)
    stats = estimator.refit()
    relative, absolute, _ = evaluate(estimator, bundle.test)
    return AblationRecord(
        ablation=ablation,
        setting=setting,
        relative_error_pct=relative,
        absolute_error=absolute,
        constraint_residual=stats.constraint_residual,
    )


def run_penalty_ablation(
    penalties: tuple[float, ...] = (1e2, 1e4, 1e6, 1e8),
    train_queries: int = 100,
    test_queries: int = 100,
    row_count: int = 30_000,
    seed: int = 0,
) -> list[AblationRecord]:
    """Sweep the constraint penalty λ of Problem 3."""
    return [
        _run_config(
            paper_config(penalty=penalty, random_seed=seed),
            "penalty",
            f"lambda={penalty:g}",
            train_queries,
            test_queries,
            row_count,
            seed,
        )
        for penalty in penalties
    ]


def run_clipping_ablation(
    train_queries: int = 100,
    test_queries: int = 100,
    row_count: int = 30_000,
    seed: int = 0,
) -> list[AblationRecord]:
    """Compare clipping negative weights vs using the raw analytic solution."""
    return [
        _run_config(
            paper_config(clip_negative_weights=clip, random_seed=seed),
            "clip_negative_weights",
            str(clip),
            train_queries,
            test_queries,
            row_count,
            seed,
        )
        for clip in (True, False)
    ]


def run_anchor_points_ablation(
    points_per_predicate: tuple[int, ...] = (1, 5, 10, 20),
    train_queries: int = 100,
    test_queries: int = 100,
    row_count: int = 30_000,
    seed: int = 0,
) -> list[AblationRecord]:
    """Sweep the number of anchor points sampled inside each predicate."""
    return [
        _run_config(
            paper_config(points_per_predicate=count, random_seed=seed),
            "points_per_predicate",
            str(count),
            train_queries,
            test_queries,
            row_count,
            seed,
        )
        for count in points_per_predicate
    ]


def run_solver_ablation(
    train_queries: int = 80,
    test_queries: int = 80,
    row_count: int = 30_000,
    seed: int = 0,
) -> list[AblationRecord]:
    """Compare the three solvers on identical training problems."""
    return [
        _run_config(
            paper_config(solver=solver, random_seed=seed),
            "solver",
            solver,
            train_queries,
            test_queries,
            row_count,
            seed,
        )
        for solver in ("analytic", "projected_gradient", "scipy")
    ]
