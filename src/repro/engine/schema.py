"""Table schemas and value encoding for the engine substrate.

The paper (Section 2.2) handles discrete and categorical columns by
mapping them onto the real line: integers in ``{1..b}`` become reals in
``[1, b+1]`` and an equality ``C = k`` becomes the range ``[k, k+1)``;
strings are mapped to integers order-preservingly first.  This module
implements that mapping so the rest of the library can work purely with
real-valued hyperrectangles:

* :class:`Column` describes one attribute (real, integer, or categorical
  with its category list),
* :class:`Schema` validates row batches, encodes raw values to floats,
  and produces the numeric domain box ``B_0`` used by every estimator.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.exceptions import SchemaError

__all__ = ["ColumnType", "Column", "Schema"]


class ColumnType(enum.Enum):
    """Supported column types."""

    REAL = "real"
    INTEGER = "integer"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class Column:
    """One attribute of a table.

    Attributes:
        name: the column name.
        column_type: REAL, INTEGER, or CATEGORICAL.
        low: lower bound of the value range (REAL/INTEGER).
        high: upper bound of the value range (REAL/INTEGER).
        categories: ordered category labels (CATEGORICAL only).
    """

    name: str
    column_type: ColumnType = ColumnType.REAL
    low: float = 0.0
    high: float = 1.0
    categories: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.column_type is ColumnType.CATEGORICAL:
            if not self.categories:
                raise SchemaError(
                    f"categorical column {self.name!r} needs at least one category"
                )
            if len(set(self.categories)) != len(self.categories):
                raise SchemaError(
                    f"categorical column {self.name!r} has duplicate categories"
                )
        else:
            if self.low > self.high:
                raise SchemaError(
                    f"column {self.name!r}: low ({self.low}) exceeds high ({self.high})"
                )

    # ------------------------------------------------------------------
    # Encoding (Section 2.2 of the paper)
    # ------------------------------------------------------------------
    @property
    def is_discrete(self) -> bool:
        """True for INTEGER and CATEGORICAL columns."""
        return self.column_type in (ColumnType.INTEGER, ColumnType.CATEGORICAL)

    @property
    def equality_width(self) -> float:
        """Width of the range an equality constraint expands to (1 or 0)."""
        return 1.0 if self.is_discrete else 0.0

    def numeric_bounds(self) -> tuple[float, float]:
        """Encoded ``[low, high]`` bounds of the column on the real line."""
        if self.column_type is ColumnType.CATEGORICAL:
            return (0.0, float(len(self.categories)))
        if self.column_type is ColumnType.INTEGER:
            # Integers in [low, high] are treated as reals in [low, high + 1].
            return (float(self.low), float(self.high) + 1.0)
        return (float(self.low), float(self.high))

    def encode_value(self, value: object) -> float:
        """Encode one raw value onto the real line."""
        if self.column_type is ColumnType.CATEGORICAL:
            try:
                return float(self.categories.index(str(value)))
            except ValueError as error:
                raise SchemaError(
                    f"value {value!r} is not a category of column {self.name!r}"
                ) from error
        try:
            return float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError) as error:
            raise SchemaError(
                f"value {value!r} is not numeric for column {self.name!r}"
            ) from error

    def encode_array(self, values: Iterable[object]) -> np.ndarray:
        """Encode a column of raw values to a float vector."""
        if self.column_type is ColumnType.CATEGORICAL:
            return np.array([self.encode_value(value) for value in values])
        return np.asarray(list(values), dtype=float)


class Schema:
    """An ordered collection of columns."""

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise SchemaError("a schema needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError("column names must be unique")
        self._columns = tuple(columns)
        self._index = {column.name: i for i, column in enumerate(columns)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> tuple[Column, ...]:
        """The columns in declaration order."""
        return self._columns

    @property
    def column_names(self) -> list[str]:
        """Column names in order."""
        return [column.name for column in self._columns]

    @property
    def dimension(self) -> int:
        """Number of columns."""
        return len(self._columns)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._columns[self._index[name]]
        except KeyError as error:
            raise SchemaError(f"unknown column {name!r}") from error

    def column_index(self, name: str) -> int:
        """Position of a column within the schema."""
        try:
            return self._index[name]
        except KeyError as error:
            raise SchemaError(f"unknown column {name!r}") from error

    def domain(self) -> Hyperrectangle:
        """The encoded domain box ``B_0`` spanned by all columns."""
        return Hyperrectangle(
            [column.numeric_bounds() for column in self._columns]
        )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_rows(
        self, rows: Sequence[Mapping[str, object]] | np.ndarray
    ) -> np.ndarray:
        """Encode raw rows (dicts or an already-numeric array) to floats."""
        if isinstance(rows, np.ndarray):
            arr = np.asarray(rows, dtype=float)
            if arr.ndim != 2 or arr.shape[1] != self.dimension:
                raise SchemaError(
                    f"numeric rows must have shape (n, {self.dimension}); "
                    f"got {arr.shape}"
                )
            return arr
        encoded = np.empty((len(rows), self.dimension))
        for row_index, row in enumerate(rows):
            for column_index, column in enumerate(self._columns):
                if column.name not in row:
                    raise SchemaError(
                        f"row {row_index} is missing column {column.name!r}"
                    )
                encoded[row_index, column_index] = column.encode_value(
                    row[column.name]
                )
        return encoded

    def __repr__(self) -> str:
        return f"Schema({self.column_names})"
