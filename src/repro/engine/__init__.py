"""A miniature in-memory DBMS substrate for exercising selectivity estimators.

The engine provides everything the paper's setting assumes exists around
the estimator: typed tables (:mod:`repro.engine.table`), a predicate
executor that measures true selectivities (:mod:`repro.engine.executor`),
a catalog that records statistics and observed-query feedback
(:mod:`repro.engine.catalog`), the feedback loop wiring estimators to the
executor (:mod:`repro.engine.feedback`), plus a cost-based access-path
optimizer and an independence-based join-size estimator showing how the
estimates get used (:mod:`repro.engine.optimizer`,
:mod:`repro.engine.join`).
"""

from repro.engine.catalog import Catalog, ColumnStatistics, TableStatistics
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.feedback import FeedbackLoop
from repro.engine.index import SortedIndex
from repro.engine.join import JoinEstimate, JoinSizeEstimator, exact_join_size
from repro.engine.optimizer import AccessPathOptimizer, CostModel, PlanChoice
from repro.engine.query import Query, QueryBuilder
from repro.engine.schema import Column, ColumnType, Schema
from repro.engine.table import Table

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Table",
    "Query",
    "QueryBuilder",
    "Executor",
    "ExecutionResult",
    "Catalog",
    "ColumnStatistics",
    "TableStatistics",
    "FeedbackLoop",
    "SortedIndex",
    "AccessPathOptimizer",
    "CostModel",
    "PlanChoice",
    "JoinSizeEstimator",
    "JoinEstimate",
    "exact_join_size",
]
