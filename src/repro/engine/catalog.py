"""System catalog: per-table statistics and recorded query feedback.

Real systems keep optimizer statistics (histograms, samples, observed
selectivities) in a catalog/metastore; Section 6 of the paper points out
that query-driven estimators can reuse exactly that infrastructure.  The
:class:`Catalog` here stores, per table:

* basic statistics refreshed by an ``ANALYZE``-style scan (row count,
  per-column min/max/mean), and
* the stream of observed ``(predicate, selectivity)`` feedback, which is
  what QuickSel and the other query-driven estimators train on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.predicate import Predicate
from repro.engine.table import Table
from repro.exceptions import SchemaError

__all__ = ["ColumnStatistics", "TableStatistics", "Catalog"]


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics of one column collected by an ANALYZE scan."""

    name: str
    minimum: float
    maximum: float
    mean: float
    distinct_estimate: int


@dataclass(frozen=True)
class TableStatistics:
    """Row count plus per-column statistics from the most recent scan."""

    table_name: str
    row_count: int
    columns: tuple[ColumnStatistics, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class FeedbackRecord:
    """One observed query: predicate, measured selectivity, sequence number."""

    sequence: int
    predicate: Predicate
    selectivity: float


class Catalog:
    """Holds statistics and query feedback for every registered table."""

    def __init__(self) -> None:
        self._statistics: dict[str, TableStatistics] = {}
        self._feedback: dict[str, list[FeedbackRecord]] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    # ANALYZE-style statistics
    # ------------------------------------------------------------------
    def analyze(self, table: Table) -> TableStatistics:
        """Scan a table and store fresh statistics (resets its scan counter)."""
        rows = table.rows()
        columns = []
        for index, column in enumerate(table.schema.columns):
            if rows.shape[0] == 0:
                columns.append(
                    ColumnStatistics(column.name, 0.0, 0.0, 0.0, 0)
                )
                continue
            values = rows[:, index]
            columns.append(
                ColumnStatistics(
                    name=column.name,
                    minimum=float(values.min()),
                    maximum=float(values.max()),
                    mean=float(values.mean()),
                    distinct_estimate=int(np.unique(values).size),
                )
            )
        statistics = TableStatistics(
            table_name=table.name,
            row_count=table.row_count,
            columns=tuple(columns),
        )
        self._statistics[table.name] = statistics
        table.mark_scanned()
        return statistics

    def statistics(self, table_name: str) -> TableStatistics:
        """Retrieve the most recent statistics for a table."""
        try:
            return self._statistics[table_name]
        except KeyError as error:
            raise SchemaError(
                f"no statistics recorded for table {table_name!r}; run analyze()"
            ) from error

    def has_statistics(self, table_name: str) -> bool:
        """True if :meth:`analyze` has been run for the table."""
        return table_name in self._statistics

    # ------------------------------------------------------------------
    # Query feedback (what query-driven estimators consume)
    # ------------------------------------------------------------------
    def record_feedback(
        self, table_name: str, predicate: Predicate, selectivity: float
    ) -> FeedbackRecord:
        """Append one observed (predicate, selectivity) pair for a table."""
        if not (0.0 <= selectivity <= 1.0):
            raise SchemaError("selectivity must be in [0, 1]")
        self._sequence += 1
        record = FeedbackRecord(
            sequence=self._sequence, predicate=predicate, selectivity=selectivity
        )
        self._feedback.setdefault(table_name, []).append(record)
        return record

    def feedback(self, table_name: str) -> list[FeedbackRecord]:
        """All feedback recorded for a table, in observation order."""
        return list(self._feedback.get(table_name, []))

    def feedback_count(self, table_name: str) -> int:
        """Number of observed queries recorded for a table."""
        return len(self._feedback.get(table_name, []))
