"""Query execution: computes exact selectivities and emits feedback.

This mirrors the integration story of Section 6 of the paper: real
engines (the example given is Spark's ``FilterExec``) already compute the
*actual* selectivity of every executed filter; query-driven estimators
only need that number to be recorded.  The :class:`Executor` evaluates a
predicate against a table, returns the exact count/selectivity, and
notifies any registered feedback listeners (see
:mod:`repro.engine.feedback`) so estimators can learn from the query.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.predicate import Predicate
from repro.engine.query import JoinQuery, Query
from repro.engine.table import Table
from repro.exceptions import SchemaError

__all__ = ["ExecutionResult", "Executor", "JoinExecutionResult"]

FeedbackListener = Callable[[str, Predicate, float], None]
JoinFeedbackListener = Callable[[JoinQuery, "JoinExecutionResult"], None]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one filter query.

    Attributes:
        table_name: the table the query ran against.
        row_count: number of rows scanned.
        matching_rows: number of rows satisfying the predicate.
        selectivity: ``matching_rows / row_count`` (0.0 on an empty table).
        elapsed_seconds: wall-clock execution time of the scan.
    """

    table_name: str
    row_count: int
    matching_rows: int
    selectivity: float
    elapsed_seconds: float


@dataclass(frozen=True)
class JoinExecutionResult:
    """Outcome of executing one equi-join query via a hash join.

    ``join_selectivity`` is normalised by the *unfiltered* cross product
    ``left_rows · right_rows`` — the quantity a learned join model over
    the joint (left ++ right) domain predicts, so it can be fed to the
    serving stack as ordinary ``(predicate, selectivity)`` feedback.
    """

    left_table: str
    right_table: str
    left_rows: int
    right_rows: int
    left_matching: int
    right_matching: int
    left_selectivity: float
    right_selectivity: float
    join_rows: int
    join_selectivity: float
    elapsed_seconds: float


class Executor:
    """Evaluates predicates against registered tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._listeners: list[FeedbackListener] = []
        self._join_listeners: list[JoinFeedbackListener] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_table(self, table: Table) -> None:
        """Make a table queryable through this executor."""
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a registered table."""
        try:
            return self._tables[name]
        except KeyError as error:
            raise SchemaError(f"unknown table {name!r}") from error

    def add_feedback_listener(self, listener: FeedbackListener) -> None:
        """Register a callback invoked with (table, predicate, selectivity)."""
        self._listeners.append(listener)

    def add_join_feedback_listener(
        self, listener: JoinFeedbackListener
    ) -> None:
        """Register a callback invoked with (join query, join result).

        Fired by :meth:`execute_join` after the per-side filter feedback,
        so join-model learning (see :mod:`repro.joins.feedback`) rides
        the same executed traffic the single-table estimators learn from.
        """
        self._join_listeners.append(listener)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Query) -> ExecutionResult:
        """Run a filter query: exact count via a full scan plus feedback."""
        table = self.table(query.table_name)
        rows = table.rows()
        start = time.perf_counter()
        if rows.shape[0] == 0:
            matching = 0
            selectivity = 0.0
        else:
            mask = query.predicate.matches(rows)
            matching = int(np.count_nonzero(mask))
            selectivity = matching / rows.shape[0]
        elapsed = time.perf_counter() - start

        for listener in self._listeners:
            listener(query.table_name, query.predicate, selectivity)

        return ExecutionResult(
            table_name=query.table_name,
            row_count=int(rows.shape[0]),
            matching_rows=matching,
            selectivity=selectivity,
            elapsed_seconds=elapsed,
        )

    def true_selectivity(self, query: Query) -> float:
        """Exact selectivity without emitting feedback (used for test sets)."""
        table = self.table(query.table_name)
        rows = table.rows()
        if rows.shape[0] == 0:
            return 0.0
        return float(query.predicate.matches(rows).mean())

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def execute_join(self, query: JoinQuery) -> JoinExecutionResult:
        """Run an equi-join query: exact hash join plus feedback.

        Emits *two* kinds of feedback from one execution: each side's
        filter selectivity through the ordinary per-table listeners
        (the single-table models keep learning from join traffic), and
        the ``(query, result)`` pair through the join listeners, whose
        ``join_selectivity`` trains per-join-key models.
        """
        result = self._run_join(query)
        for listener in self._listeners:
            listener(
                query.left.table_name,
                query.left.predicate,
                result.left_selectivity,
            )
            listener(
                query.right.table_name,
                query.right.predicate,
                result.right_selectivity,
            )
        for join_listener in self._join_listeners:
            join_listener(query, result)
        return result

    def true_join_selectivity(self, query: JoinQuery) -> float:
        """Exact cross-product-normalised join selectivity, no feedback."""
        return self._run_join(query).join_selectivity

    def _run_join(self, query: JoinQuery) -> JoinExecutionResult:
        left_table = self.table(query.left.table_name)
        right_table = self.table(query.right.table_name)
        for table, key, side in (
            (left_table, query.left_key, "left"),
            (right_table, query.right_key, "right"),
        ):
            if key not in table.schema.column_names:
                raise SchemaError(
                    f"unknown {side} join key {key!r} on table {table.name!r}"
                )
        left_rows = left_table.rows()
        right_rows = right_table.rows()
        start = time.perf_counter()
        left_matching = right_matching = join_rows = 0
        if left_rows.shape[0] and right_rows.shape[0]:
            left_mask = query.left.predicate.matches(left_rows)
            right_mask = query.right.predicate.matches(right_rows)
            left_matching = int(np.count_nonzero(left_mask))
            right_matching = int(np.count_nonzero(right_mask))
            if left_matching and right_matching:
                left_keys = left_rows[
                    left_mask, left_table.schema.column_index(query.left_key)
                ]
                right_keys = right_rows[
                    right_mask,
                    right_table.schema.column_index(query.right_key),
                ]
                left_unique, left_counts = np.unique(
                    left_keys, return_counts=True
                )
                right_unique, right_counts = np.unique(
                    right_keys, return_counts=True
                )
                _, left_idx, right_idx = np.intersect1d(
                    left_unique, right_unique, return_indices=True
                )
                if left_idx.size:
                    join_rows = int(
                        np.dot(left_counts[left_idx], right_counts[right_idx])
                    )
        elapsed = time.perf_counter() - start
        left_count = int(left_rows.shape[0])
        right_count = int(right_rows.shape[0])
        cross = left_count * right_count
        return JoinExecutionResult(
            left_table=left_table.name,
            right_table=right_table.name,
            left_rows=left_count,
            right_rows=right_count,
            left_matching=left_matching,
            right_matching=right_matching,
            left_selectivity=(
                left_matching / left_count if left_count else 0.0
            ),
            right_selectivity=(
                right_matching / right_count if right_count else 0.0
            ),
            join_rows=join_rows,
            join_selectivity=join_rows / cross if cross else 0.0,
            elapsed_seconds=elapsed,
        )
