"""Query execution: computes exact selectivities and emits feedback.

This mirrors the integration story of Section 6 of the paper: real
engines (the example given is Spark's ``FilterExec``) already compute the
*actual* selectivity of every executed filter; query-driven estimators
only need that number to be recorded.  The :class:`Executor` evaluates a
predicate against a table, returns the exact count/selectivity, and
notifies any registered feedback listeners (see
:mod:`repro.engine.feedback`) so estimators can learn from the query.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.predicate import Predicate
from repro.engine.query import Query
from repro.engine.table import Table
from repro.exceptions import SchemaError

__all__ = ["ExecutionResult", "Executor"]

FeedbackListener = Callable[[str, Predicate, float], None]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one filter query.

    Attributes:
        table_name: the table the query ran against.
        row_count: number of rows scanned.
        matching_rows: number of rows satisfying the predicate.
        selectivity: ``matching_rows / row_count`` (0.0 on an empty table).
        elapsed_seconds: wall-clock execution time of the scan.
    """

    table_name: str
    row_count: int
    matching_rows: int
    selectivity: float
    elapsed_seconds: float


class Executor:
    """Evaluates predicates against registered tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._listeners: list[FeedbackListener] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_table(self, table: Table) -> None:
        """Make a table queryable through this executor."""
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a registered table."""
        try:
            return self._tables[name]
        except KeyError as error:
            raise SchemaError(f"unknown table {name!r}") from error

    def add_feedback_listener(self, listener: FeedbackListener) -> None:
        """Register a callback invoked with (table, predicate, selectivity)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Query) -> ExecutionResult:
        """Run a filter query: exact count via a full scan plus feedback."""
        table = self.table(query.table_name)
        rows = table.rows()
        start = time.perf_counter()
        if rows.shape[0] == 0:
            matching = 0
            selectivity = 0.0
        else:
            mask = query.predicate.matches(rows)
            matching = int(np.count_nonzero(mask))
            selectivity = matching / rows.shape[0]
        elapsed = time.perf_counter() - start

        for listener in self._listeners:
            listener(query.table_name, query.predicate, selectivity)

        return ExecutionResult(
            table_name=query.table_name,
            row_count=int(rows.shape[0]),
            matching_rows=matching,
            selectivity=selectivity,
            elapsed_seconds=elapsed,
        )

    def true_selectivity(self, query: Query) -> float:
        """Exact selectivity without emitting feedback (used for test sets)."""
        table = self.table(query.table_name)
        rows = table.rows()
        if rows.shape[0] == 0:
            return 0.0
        return float(query.predicate.matches(rows).mean())
