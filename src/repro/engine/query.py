"""Name-based query construction bound to a table schema.

The core predicate algebra works on dimension indices; this module lets
callers (examples, experiments, the optimizer) express predicates using
column *names* and raw values, handling the paper's Section 2.2 encoding
of discrete and categorical columns automatically:

* ``builder.range("price", 10, 20)`` — two-sided range,
* ``builder.at_least("year", 2005)`` / ``builder.at_most(...)`` — one-sided,
* ``builder.equals("state", "NY")`` — equality; categorical labels are
  mapped to their ordinal code and expanded to ``[code, code + 1)``,
* predicates compose with ``&``, ``|`` and ``~``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predicate import (
    BoxPredicate,
    EqualityConstraint,
    Predicate,
    RangeConstraint,
    TruePredicate,
)
from repro.engine.schema import ColumnType, Schema
from repro.exceptions import PredicateError

__all__ = ["JoinQuery", "Query", "QueryBuilder"]


@dataclass(frozen=True)
class Query:
    """A SELECT-COUNT style query: a predicate over one table."""

    table_name: str
    predicate: Predicate
    description: str = ""

    def __repr__(self) -> str:
        label = self.description or repr(self.predicate)
        return f"Query(table={self.table_name!r}, predicate={label})"


@dataclass(frozen=True)
class JoinQuery:
    """An equi-join COUNT query: two filtered sides joined on one key each.

    ``left``/``right`` carry each side's table and local filter (use a
    :class:`~repro.core.predicate.TruePredicate` for an unfiltered
    side); ``left_key``/``right_key`` name the join columns.
    """

    left: Query
    right: Query
    left_key: str
    right_key: str
    description: str = ""

    def __repr__(self) -> str:
        label = self.description or (
            f"{self.left.table_name}.{self.left_key} = "
            f"{self.right.table_name}.{self.right_key}"
        )
        return f"JoinQuery({label})"


class QueryBuilder:
    """Builds core predicates from column names and raw values."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema

    @property
    def schema(self) -> Schema:
        """The schema names are resolved against."""
        return self._schema

    # ------------------------------------------------------------------
    # Leaf predicates
    # ------------------------------------------------------------------
    def select_all(self) -> Predicate:
        """The empty predicate ``P_0`` (selects every row)."""
        return TruePredicate()

    def range(
        self, column: str, low: float | None, high: float | None
    ) -> Predicate:
        """``low <= column <= high`` with optional one-sided bounds."""
        col = self._schema.column(column)
        dim = self._schema.column_index(column)
        if col.column_type is ColumnType.CATEGORICAL:
            raise PredicateError(
                f"range constraints are not supported on categorical column "
                f"{column!r}; use equals() or is_in()"
            )
        encoded_high = high
        if high is not None and col.column_type is ColumnType.INTEGER:
            # Integer ranges are inclusive; the encoded domain treats the
            # integer k as the interval [k, k + 1).
            encoded_high = float(high) + 1.0
        return BoxPredicate([RangeConstraint(dim, low, encoded_high)])

    def at_least(self, column: str, low: float) -> Predicate:
        """``column >= low``."""
        return self.range(column, low, None)

    def at_most(self, column: str, high: float) -> Predicate:
        """``column <= high``."""
        return self.range(column, None, high)

    def equals(self, column: str, value: object) -> Predicate:
        """``column = value`` (categorical labels are encoded automatically)."""
        col = self._schema.column(column)
        dim = self._schema.column_index(column)
        encoded = col.encode_value(value)
        return BoxPredicate(
            [EqualityConstraint(dim, encoded, width=col.equality_width)]
        )

    def is_in(self, column: str, values: list[object]) -> Predicate:
        """``column IN (values...)`` as a disjunction of equalities."""
        if not values:
            raise PredicateError("is_in() needs at least one value")
        predicates = [self.equals(column, value) for value in values]
        result: Predicate = predicates[0]
        for predicate in predicates[1:]:
            result = result | predicate
        return result

    # ------------------------------------------------------------------
    # Whole queries
    # ------------------------------------------------------------------
    def query(
        self, table_name: str, predicate: Predicate, description: str = ""
    ) -> Query:
        """Wrap a predicate into a :class:`Query` against ``table_name``."""
        return Query(
            table_name=table_name, predicate=predicate, description=description
        )
