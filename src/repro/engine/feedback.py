"""Wiring between query execution and query-driven estimators.

:class:`FeedbackLoop` implements the integration sketched in Section 6 of
the paper: the executor computes the actual selectivity of every filter it
runs; the loop stores that observation in the catalog and forwards it to
any query-driven estimators registered for the table, so their models keep
improving as the workload runs — the "selectivity learning" loop.

Feedback can flow to two kinds of consumers:

* a bare estimator (:meth:`FeedbackLoop.register_estimator`), which is
  observed directly — the seed behaviour, still used by the experiment
  harness; or
* a serving backend (:meth:`FeedbackLoop.register_service`) — either a
  single-process :class:`~repro.serving.service.SelectivityService` or a
  sharded :class:`~repro.cluster.service.ShardedSelectivityService`;
  anything satisfying the
  :class:`~repro.serving.adapter.SelectivityServing` protocol.  The
  backend accumulates the feedback behind its refit policy and
  republishes model snapshots in the background (the sharded backend
  additionally buffers it so writes never stall behind a refit).  This
  is how the mini-DBMS exercises the serving stack end to end: the
  returned :class:`~repro.serving.adapter.ServingEstimator` plugs
  straight into the optimizer, so plan costing, feedback, and retraining
  all route through the backend — and moving a deployment from one
  process to a shard fleet changes only which backend is handed in here.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.predicate import Predicate
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.estimators.backend import TrainableBackend
from repro.estimators.base import QueryDrivenEstimator
from repro.core.quicksel import QuickSel
from repro.exceptions import ServingError
from repro.serving.adapter import SelectivityServing, ServingEstimator

__all__ = ["FeedbackLoop"]

LearningEstimator = QueryDrivenEstimator | QuickSel | TrainableBackend


class FeedbackLoop:
    """Routes observed selectivities from the executor to estimators."""

    def __init__(self, executor: Executor, catalog: Catalog) -> None:
        self._executor = executor
        self._catalog = catalog
        self._estimators: dict[str, list[LearningEstimator]] = {}
        executor.add_feedback_listener(self._on_feedback)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_estimator(
        self, table_name: str, estimator: LearningEstimator
    ) -> None:
        """Subscribe an estimator to feedback from queries on ``table_name``."""
        self._estimators.setdefault(table_name, []).append(estimator)

    def register_service(
        self,
        table_name: str,
        service: SelectivityServing,
        trainer: TrainableBackend | None = None,
        columns: Sequence[str] = (),
    ) -> ServingEstimator:
        """Route this table's feedback through a selectivity backend.

        ``service`` may be a plain
        :class:`~repro.serving.service.SelectivityService` or a sharded
        :class:`~repro.cluster.service.ShardedSelectivityService` — the
        loop only relies on the shared
        :class:`~repro.serving.adapter.SelectivityServing` surface.  If
        ``trainer`` is given — any
        :class:`~repro.estimators.backend.TrainableBackend`: QuickSel, an
        adapted baseline estimator, or a bare query-driven/scan-based
        estimator the service will wrap — it is first registered with the
        backend under ``(table_name, columns)``; otherwise the key must
        already exist there.  Returns the
        :class:`~repro.serving.adapter.ServingEstimator` adapter for the
        key so callers can hand the served model to the optimizer.
        """
        if trainer is not None:
            key = service.register_model(table_name, trainer, columns=columns)
        else:
            key = service.key_for(table_name, columns)
            if key not in service.model_keys():
                # A snapshot in a shared registry is not enough: the
                # feedback path needs this service to own a trainer.
                raise ServingError(
                    f"service owns no trainer for key {key}; pass trainer= "
                    "or call service.register_model() first"
                )
        adapter = ServingEstimator(service, key)
        self.register_estimator(table_name, adapter)
        return adapter

    def estimators_for(self, table_name: str) -> Sequence[LearningEstimator]:
        """Estimators currently subscribed to a table."""
        return tuple(self._estimators.get(table_name, []))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _on_feedback(
        self, table_name: str, predicate: Predicate, selectivity: float
    ) -> None:
        self._catalog.record_feedback(table_name, predicate, selectivity)
        for estimator in self._estimators.get(table_name, []):
            estimator.observe(predicate, selectivity)
