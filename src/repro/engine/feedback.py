"""Wiring between query execution and query-driven estimators.

:class:`FeedbackLoop` implements the integration sketched in Section 6 of
the paper: the executor computes the actual selectivity of every filter it
runs; the loop stores that observation in the catalog and forwards it to
any query-driven estimators registered for the table, so their models keep
improving as the workload runs — the "selectivity learning" loop.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.predicate import Predicate
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.estimators.base import QueryDrivenEstimator
from repro.core.quicksel import QuickSel

__all__ = ["FeedbackLoop"]

LearningEstimator = QueryDrivenEstimator | QuickSel


class FeedbackLoop:
    """Routes observed selectivities from the executor to estimators."""

    def __init__(self, executor: Executor, catalog: Catalog) -> None:
        self._executor = executor
        self._catalog = catalog
        self._estimators: dict[str, list[LearningEstimator]] = {}
        executor.add_feedback_listener(self._on_feedback)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_estimator(
        self, table_name: str, estimator: LearningEstimator
    ) -> None:
        """Subscribe an estimator to feedback from queries on ``table_name``."""
        self._estimators.setdefault(table_name, []).append(estimator)

    def estimators_for(self, table_name: str) -> Sequence[LearningEstimator]:
        """Estimators currently subscribed to a table."""
        return tuple(self._estimators.get(table_name, []))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _on_feedback(
        self, table_name: str, predicate: Predicate, selectivity: float
    ) -> None:
        self._catalog.record_feedback(table_name, predicate, selectivity)
        for estimator in self._estimators.get(table_name, []):
            estimator.observe(predicate, selectivity)
