"""In-memory columnar table.

The engine stores rows as a dense float matrix (after schema encoding)
and tracks how many rows have been modified since the last statistics
scan — the counter that drives the automatic-update rule of the
scan-based estimators (AutoHist / AutoSample) and of real systems like
SQL Server's AUTO_UPDATE_STATISTICS.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.geometry import Hyperrectangle
from repro.engine.schema import Schema
from repro.exceptions import SchemaError

__all__ = ["Table"]


class Table:
    """A named, schema-typed, in-memory table."""

    def __init__(self, name: str, schema: Schema) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self._name = name
        self._schema = schema
        self._rows = np.empty((0, schema.dimension))
        self._modified_since_scan = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The table name."""
        return self._name

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def row_count(self) -> int:
        """Number of rows currently stored."""
        return int(self._rows.shape[0])

    @property
    def modified_since_scan(self) -> int:
        """Rows inserted/deleted since :meth:`mark_scanned` was last called."""
        return self._modified_since_scan

    def domain(self) -> Hyperrectangle:
        """The encoded domain ``B_0`` of the table's columns."""
        return self._schema.domain()

    def rows(self) -> np.ndarray:
        """The encoded row matrix (read-only view)."""
        view = self._rows.view()
        view.setflags(write=False)
        return view

    def column_values(self, name: str) -> np.ndarray:
        """All encoded values of one column."""
        return self._rows[:, self._schema.column_index(name)].copy()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, rows: Sequence[Mapping[str, object]] | np.ndarray) -> int:
        """Append rows (dicts or a numeric array); returns how many were added."""
        encoded = self._schema.encode_rows(rows)
        if encoded.shape[0] == 0:
            return 0
        self._rows = np.vstack([self._rows, encoded])
        self._modified_since_scan += encoded.shape[0]
        return int(encoded.shape[0])

    def delete_where(self, mask: np.ndarray) -> int:
        """Delete rows where ``mask`` is True; returns how many were removed."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.row_count,):
            raise SchemaError(
                f"mask must have shape ({self.row_count},); got {mask.shape}"
            )
        removed = int(mask.sum())
        if removed:
            self._rows = self._rows[~mask]
            self._modified_since_scan += removed
        return removed

    def truncate(self) -> None:
        """Remove all rows."""
        removed = self.row_count
        self._rows = np.empty((0, self._schema.dimension))
        self._modified_since_scan += removed

    def mark_scanned(self) -> None:
        """Reset the modification counter (called after an ANALYZE-style scan)."""
        self._modified_since_scan = 0

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:
        return (
            f"Table({self._name!r}, rows={self.row_count}, "
            f"columns={self._schema.column_names})"
        )
