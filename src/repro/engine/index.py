"""A simple sorted (B-tree-like) secondary index on one column.

The index exists to give the access-path optimizer something to choose
*between*: a full scan touches every row, while an index range scan
touches only the matching fraction (plus per-row lookup overhead).  This
is the classic setting where a selectivity estimate decides the plan —
the motivation the paper opens with.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.engine.table import Table
from repro.exceptions import SchemaError

__all__ = ["SortedIndex"]


class SortedIndex:
    """A sorted array of (value, row id) pairs over one column."""

    def __init__(self, table: Table, column: str) -> None:
        self._table = table
        self._column = column
        self._column_index = table.schema.column_index(column)
        self._values: np.ndarray = np.empty(0)
        self._row_ids: np.ndarray = np.empty(0, dtype=int)
        self.rebuild()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Rebuild the index from the table's current contents."""
        rows = self._table.rows()
        values = rows[:, self._column_index] if rows.shape[0] else np.empty(0)
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        self._row_ids = order.astype(int)

    @property
    def column(self) -> str:
        """The indexed column name."""
        return self._column

    @property
    def entry_count(self) -> int:
        """Number of indexed entries."""
        return int(self._values.shape[0])

    def is_stale(self) -> bool:
        """True if the table has grown/shrunk since the index was built."""
        return self.entry_count != self._table.row_count

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def range_lookup(self, low: float | None, high: float | None) -> np.ndarray:
        """Row ids whose indexed value lies in ``[low, high]``."""
        if self.entry_count == 0:
            return np.empty(0, dtype=int)
        values = self._values
        left = 0 if low is None else bisect.bisect_left(values, low)
        right = len(values) if high is None else bisect.bisect_right(values, high)
        if left >= right:
            return np.empty(0, dtype=int)
        return self._row_ids[left:right].copy()

    def equality_lookup(self, value: float) -> np.ndarray:
        """Row ids whose indexed value equals ``value``."""
        return self.range_lookup(value, value)

    def count_in_range(self, low: float | None, high: float | None) -> int:
        """Number of entries with value in ``[low, high]`` (no row fetch)."""
        if self.entry_count == 0:
            return 0
        values = self._values
        left = 0 if low is None else bisect.bisect_left(values, low)
        right = len(values) if high is None else bisect.bisect_right(values, high)
        return max(right - left, 0)

    def __repr__(self) -> str:
        return f"SortedIndex(column={self._column!r}, entries={self.entry_count})"


def build_index(table: Table, column: str) -> SortedIndex:
    """Convenience constructor validating the column exists."""
    if column not in table.schema.column_names:
        raise SchemaError(f"cannot index unknown column {column!r}")
    return SortedIndex(table, column)
