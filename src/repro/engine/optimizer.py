"""Cost-based access-path selection driven by selectivity estimates.

The introduction of the paper motivates selectivity estimation with plan
choice: the optimizer picks the cheapest access path given how many rows a
predicate is expected to match.  This module implements that decision for
the engine substrate so the examples (and the future-work experiment on
plan quality) can show the end-to-end effect of a better estimator:

* **sequential scan** — cost proportional to the row count,
* **index range scan** — cost proportional to the estimated matching rows
  times a per-row random-access penalty (only available when the predicate
  constrains an indexed column with a simple range/equality).

The optimizer asks a :class:`~repro.estimators.base.SelectivityEstimator`
for the predicate's selectivity, prices both paths, and picks the cheaper;
``plan_with_true_selectivity`` provides the oracle plan so experiments can
count how often an estimator leads the optimizer astray.

Plan enumeration issues selectivity probes in bursts — one per candidate
predicate — so :meth:`AccessPathOptimizer.plan_many` resolves a whole
burst with a single ``estimate_many`` call.  Handing the optimizer a
:class:`~repro.serving.adapter.ServingEstimator` routes those probes
through the serving layer's snapshot, cache, and vectorised batch path.

Multi-table plan enumeration (join ordering, multi-statement batches)
probes *several* tables' models in one burst; :func:`plan_many_tables`
resolves such a burst with a single ``estimate_batch_mixed`` call when
all the involved optimizers serve off the same backend — behind a
:class:`~repro.cluster.service.ShardedSelectivityService` that one call
fans out across every shard involved and reassembles in input order.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.predicate import BoxPredicate, Predicate
from repro.engine.index import SortedIndex
from repro.engine.table import Table
from repro.estimators.base import SelectivityEstimator
from repro.exceptions import SchemaError
from repro.serving.adapter import ServingEstimator

__all__ = [
    "CostModel",
    "PlanChoice",
    "AccessPathOptimizer",
    "plan_join_tree",
    "plan_many_tables",
]


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the access-path cost model.

    Attributes:
        sequential_page_cost: cost of touching one row during a scan.
        random_access_cost: cost of fetching one row through an index
            (random I/O penalty; > sequential_page_cost).
        index_lookup_cost: fixed cost of descending the index.
    """

    sequential_page_cost: float = 1.0
    random_access_cost: float = 4.0
    index_lookup_cost: float = 10.0

    def scan_cost(self, row_count: int) -> float:
        """Cost of a full sequential scan."""
        return self.sequential_page_cost * row_count

    def index_cost(self, row_count: int, selectivity: float) -> float:
        """Cost of an index range scan returning ``selectivity * row_count`` rows."""
        matching = selectivity * row_count
        return self.index_lookup_cost + self.random_access_cost * matching


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's decision for one query.

    Attributes:
        access_path: "seq_scan" or "index_scan".
        index_column: the indexed column used (None for a scan).
        estimated_selectivity: the estimate the decision was based on.
        estimated_cost: cost of the chosen path under the cost model.
        alternative_cost: cost of the rejected path.
    """

    access_path: str
    index_column: str | None
    estimated_selectivity: float
    estimated_cost: float
    alternative_cost: float

    @property
    def used_index(self) -> bool:
        """True if the optimizer chose the index path."""
        return self.access_path == "index_scan"


class AccessPathOptimizer:
    """Chooses between a sequential scan and an index scan."""

    def __init__(
        self,
        table: Table,
        estimator: SelectivityEstimator,
        cost_model: CostModel | None = None,
    ) -> None:
        self._table = table
        self._estimator = estimator
        self._cost_model = cost_model or CostModel()
        self._indexes: dict[str, SortedIndex] = {}

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def add_index(self, column: str) -> SortedIndex:
        """Create (or return the existing) sorted index on a column."""
        if column not in self._table.schema.column_names:
            raise SchemaError(f"cannot index unknown column {column!r}")
        if column not in self._indexes:
            self._indexes[column] = SortedIndex(self._table, column)
        return self._indexes[column]

    @property
    def indexed_columns(self) -> list[str]:
        """Columns that currently have an index."""
        return sorted(self._indexes)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, predicate: Predicate) -> PlanChoice:
        """Pick the cheaper access path using the estimator's selectivity."""
        selectivity = self._estimator.estimate(predicate)
        return self._plan_with(predicate, selectivity)

    def plan_many(self, predicates: Sequence[Predicate]) -> list[PlanChoice]:
        """Plan a burst of candidate predicates with one batched probe.

        All selectivities are fetched through the estimator's
        ``estimate_many`` (one vectorised call — and, behind a serving
        adapter, one consistent model version) instead of one scalar
        probe per candidate.
        """
        selectivities = self._estimator.estimate_many(predicates)
        return [
            self._plan_with(predicate, float(selectivity))
            for predicate, selectivity in zip(predicates, selectivities)
        ]

    def plan_with_true_selectivity(
        self, predicate: Predicate, true_selectivity: float
    ) -> PlanChoice:
        """Oracle plan: same cost model but fed the exact selectivity."""
        return self._plan_with(predicate, true_selectivity)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _plan_with(self, predicate: Predicate, selectivity: float) -> PlanChoice:
        row_count = self._table.row_count
        scan_cost = self._cost_model.scan_cost(row_count)
        usable_column = self._usable_index_column(predicate)
        if usable_column is None:
            return PlanChoice(
                access_path="seq_scan",
                index_column=None,
                estimated_selectivity=selectivity,
                estimated_cost=scan_cost,
                alternative_cost=float("inf"),
            )
        index_cost = self._cost_model.index_cost(row_count, selectivity)
        if index_cost < scan_cost:
            return PlanChoice(
                access_path="index_scan",
                index_column=usable_column,
                estimated_selectivity=selectivity,
                estimated_cost=index_cost,
                alternative_cost=scan_cost,
            )
        return PlanChoice(
            access_path="seq_scan",
            index_column=usable_column,
            estimated_selectivity=selectivity,
            estimated_cost=scan_cost,
            alternative_cost=index_cost,
        )

    def _usable_index_column(self, predicate: Predicate) -> str | None:
        """An indexed column constrained by the predicate, if any.

        Only simple conjunctive (box) predicates can use an index range
        scan in this engine; more complex predicates fall back to a scan.
        """
        if not isinstance(predicate, BoxPredicate) or not self._indexes:
            return None
        constrained_dims = {constraint.dim for constraint in predicate.constraints}
        for column in self.indexed_columns:
            if self._table.schema.column_index(column) in constrained_dims:
                return column
        return None


def plan_many_tables(
    optimizers: Mapping[str, AccessPathOptimizer],
    requests: Sequence[tuple[str, Predicate]],
) -> list[PlanChoice]:
    """Plan a burst of ``(table, predicate)`` candidates across tables.

    When every requested table's optimizer serves off the *same* backend
    through a :class:`~repro.serving.adapter.ServingEstimator`, all
    selectivities are fetched in one ``estimate_batch_mixed`` call —
    against a sharded backend that is one fan-out over the shards
    involved, each shard answering its keys through its vectorised batch
    path.  Otherwise each table's slice goes through its own optimizer's
    :meth:`~AccessPathOptimizer.plan_many`.  Either way, plans come back
    in input order.
    """
    plans: list[PlanChoice | None] = [None] * len(requests)
    for table, _ in requests:
        if table not in optimizers:
            raise SchemaError(f"no optimizer registered for table {table!r}")
    involved = {table for table, _ in requests}
    estimators = {table: optimizers[table]._estimator for table in involved}
    backends = {
        id(estimator.service)
        for estimator in estimators.values()
        if isinstance(estimator, ServingEstimator)
    }
    shared_backend = (
        len(backends) == 1
        and all(
            isinstance(estimator, ServingEstimator)
            for estimator in estimators.values()
        )
    )
    if shared_backend and requests:
        service = next(iter(estimators.values())).service
        pairs = [
            (estimators[table].key, predicate) for table, predicate in requests
        ]
        selectivities = service.estimate_batch_mixed(pairs)
        for index, (table, predicate) in enumerate(requests):
            plans[index] = optimizers[table]._plan_with(
                predicate, float(selectivities[index])
            )
    else:
        by_table: dict[str, list[int]] = {}
        for index, (table, _) in enumerate(requests):
            by_table.setdefault(table, []).append(index)
        for table, indices in by_table.items():
            table_plans = optimizers[table].plan_many(
                [requests[index][1] for index in indices]
            )
            for index, plan in zip(indices, table_plans):
                plans[index] = plan
    # Every slot must be filled: a silent gap would misalign plans with
    # requests for every caller zipping the two.  Raised explicitly
    # (not `assert`) so the invariant survives `python -O`.
    missing = [index for index, plan in enumerate(plans) if plan is None]
    if missing:
        raise AssertionError(f"plan slots {missing} were never filled")
    return [plan for plan in plans if plan is not None]


def plan_join_tree(estimators, predicates=None):
    """Order a 3+-table join tree by sandwiched cardinalities.

    ``estimators`` are the query's join edges
    (:class:`~repro.joins.estimator.SandwichedJoinEstimator`, all on one
    serving backend); ``predicates`` maps table name to its local
    filter.  All edges' per-table and join-model lookups travel in a
    single ``estimate_batch_mixed`` burst; edges without a registered
    join model fall back to the independence formula, clamped by the
    same pessimistic bounds.  Returns a
    :class:`~repro.joins.planner.JoinTreePlan`.

    Imported lazily: the joins subsystem sits above the engine, and the
    optimizer only reaches up when a caller actually plans a join tree.
    """
    from repro.joins.planner import JoinTreePlanner

    return JoinTreePlanner(estimators).plan(predicates)
