"""Join-size estimation from per-table selectivity estimators.

Section 2.2 and the future-work section of the paper note that any
single-table selectivity estimator extends to joins when the local
predicates are independent of the join condition: the standard
System-R-style estimate is

``|R ⋈ S| ≈ |R| · |S| · sel_R(pred_R) · sel_S(pred_S) / max(V(R.k), V(S.k))``

where ``V(·)`` is the number of distinct join-key values.  This module
implements that estimator on top of the engine substrate, plus an exact
hash-join counter so experiments can measure how much a better per-table
estimator improves join-size estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predicate import Predicate, TruePredicate
from repro.engine.table import Table
from repro.estimators.base import SelectivityEstimator
from repro.exceptions import SchemaError

__all__ = ["JoinEstimate", "JoinSizeEstimator", "exact_join_size"]


@dataclass(frozen=True)
class JoinEstimate:
    """An estimated equi-join cardinality and its ingredients."""

    left_rows: int
    right_rows: int
    left_selectivity: float
    right_selectivity: float
    distinct_keys: int
    estimated_rows: float


class JoinSizeEstimator:
    """Independence-based equi-join cardinality estimation."""

    def __init__(
        self,
        left_table: Table,
        right_table: Table,
        left_estimator: SelectivityEstimator,
        right_estimator: SelectivityEstimator,
    ) -> None:
        self._left_table = left_table
        self._right_table = right_table
        self._left_estimator = left_estimator
        self._right_estimator = right_estimator

    def estimate(
        self,
        left_key: str,
        right_key: str,
        left_predicate: Predicate | None = None,
        right_predicate: Predicate | None = None,
    ) -> JoinEstimate:
        """Estimate ``|σ(L) ⋈ σ(R)|`` for an equi-join on the given keys."""
        if left_key not in self._left_table.schema.column_names:
            raise SchemaError(f"unknown join key {left_key!r} on left table")
        if right_key not in self._right_table.schema.column_names:
            raise SchemaError(f"unknown join key {right_key!r} on right table")

        left_predicate = left_predicate or TruePredicate()
        right_predicate = right_predicate or TruePredicate()
        left_selectivity = self._left_estimator.estimate(left_predicate)
        right_selectivity = self._right_estimator.estimate(right_predicate)

        left_keys = self._left_table.column_values(left_key)
        right_keys = self._right_table.column_values(right_key)
        distinct = max(
            int(np.unique(left_keys).size) if left_keys.size else 1,
            int(np.unique(right_keys).size) if right_keys.size else 1,
            1,
        )
        estimated = (
            self._left_table.row_count
            * self._right_table.row_count
            * left_selectivity
            * right_selectivity
            / distinct
        )
        return JoinEstimate(
            left_rows=self._left_table.row_count,
            right_rows=self._right_table.row_count,
            left_selectivity=left_selectivity,
            right_selectivity=right_selectivity,
            distinct_keys=distinct,
            estimated_rows=float(estimated),
        )


def exact_join_size(
    left_table: Table,
    right_table: Table,
    left_key: str,
    right_key: str,
    left_predicate: Predicate | None = None,
    right_predicate: Predicate | None = None,
) -> int:
    """Exact equi-join cardinality via a hash join (ground truth for tests)."""
    left_predicate = left_predicate or TruePredicate()
    right_predicate = right_predicate or TruePredicate()

    left_rows = left_table.rows()
    right_rows = right_table.rows()
    if left_rows.shape[0] == 0 or right_rows.shape[0] == 0:
        return 0

    left_mask = left_predicate.matches(left_rows)
    right_mask = right_predicate.matches(right_rows)
    left_keys = left_rows[left_mask, left_table.schema.column_index(left_key)]
    right_keys = right_rows[right_mask, right_table.schema.column_index(right_key)]
    if left_keys.size == 0 or right_keys.size == 0:
        return 0

    left_unique, left_counts = np.unique(left_keys, return_counts=True)
    right_unique, right_counts = np.unique(right_keys, return_counts=True)
    common, left_idx, right_idx = np.intersect1d(
        left_unique, right_unique, return_indices=True
    )
    if common.size == 0:
        return 0
    return int(np.dot(left_counts[left_idx], right_counts[right_idx]))
