"""Small linear-algebra helpers shared by the QP solvers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError

__all__ = ["symmetrize", "regularized_solve", "project_to_simplex_nonneg"]


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part of a square matrix.

    The ``Q`` and ``AᵀA`` matrices are symmetric in exact arithmetic;
    symmetrising removes the tiny asymmetries floating point introduces so
    Cholesky-based solvers stay happy.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise SolverError(f"expected a square matrix; got shape {arr.shape}")
    return 0.5 * (arr + arr.T)


def regularized_solve(
    matrix: np.ndarray, rhs: np.ndarray, ridge: float = 0.0
) -> np.ndarray:
    """Solve ``(matrix + ridge * I) x = rhs`` robustly.

    Tries a Cholesky-backed solve first (the system is symmetric positive
    semi-definite by construction); falls back to least squares when the
    matrix is numerically singular, which can happen when subpopulations
    coincide exactly.
    """
    mat = symmetrize(matrix)
    vec = np.asarray(rhs, dtype=float)
    if vec.shape[0] != mat.shape[0]:
        raise SolverError(
            f"rhs length {vec.shape[0]} does not match matrix size {mat.shape[0]}"
        )
    if ridge < 0:
        raise SolverError("ridge must be non-negative")
    if ridge > 0:
        mat = mat + ridge * np.eye(mat.shape[0])
    try:
        return np.linalg.solve(mat, vec)
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(mat, vec, rcond=None)
        return solution


def project_to_simplex_nonneg(weights: np.ndarray) -> np.ndarray:
    """Clip to the non-negative orthant and rescale the total mass to 1.

    Not a true Euclidean simplex projection -- it matches what the paper's
    pragmatic treatment needs: negative weights are artefacts of dropping
    the positivity constraint and should simply be removed.
    """
    clipped = np.clip(np.asarray(weights, dtype=float), 0.0, None)
    total = clipped.sum()
    if total <= 0:
        raise SolverError("cannot renormalise a weight vector with no positive mass")
    return clipped / total
