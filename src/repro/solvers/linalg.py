"""Small linear-algebra helpers shared by the QP solvers.

Besides the stateless helpers, this module owns the factor cache behind
the incremental training pipeline: :class:`CachedCholesky` keeps the
Cholesky factor of the normal matrix ``G = Q + λAᵀA`` alive between
refits and absorbs newly observed constraint rows with a rank-k update
(:func:`cholesky_update`) — and, for streaming-window training, folds
*expired* rows back out with a rank-k downdate
(:func:`cholesky_downdate`) — instead of refactorising, falling back to
a full refactorisation when the combined sweep would be slower than a
fresh factorisation, when the factor's condition estimate degrades, or
when a downdate loses positive definiteness numerically.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as scipy_linalg

from repro.exceptions import SolverError

__all__ = [
    "symmetrize",
    "regularized_solve",
    "project_to_simplex_nonneg",
    "cholesky_update",
    "cholesky_downdate",
    "CachedCholesky",
]


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part of a square matrix.

    The ``Q`` and ``AᵀA`` matrices are symmetric in exact arithmetic;
    symmetrising removes the tiny asymmetries floating point introduces so
    Cholesky-based solvers stay happy.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise SolverError(f"expected a square matrix; got shape {arr.shape}")
    return 0.5 * (arr + arr.T)


def _prepare_spd(matrix: np.ndarray, ridge: float) -> np.ndarray:
    """Symmetrise and ridge-shift a matrix the way every SPD solve does.

    Shared by :func:`regularized_solve` and :class:`CachedCholesky` so a
    cached factorisation is bit-identical to the one a from-scratch solve
    would compute from the same matrix.
    """
    mat = symmetrize(matrix)
    if ridge < 0:
        raise SolverError("ridge must be non-negative")
    if ridge > 0:
        mat = mat + ridge * np.eye(mat.shape[0])
    return mat


def regularized_solve(
    matrix: np.ndarray, rhs: np.ndarray, ridge: float = 0.0
) -> np.ndarray:
    """Solve ``(matrix + ridge * I) x = rhs`` robustly.

    Tries a Cholesky-backed solve first (the system is symmetric positive
    semi-definite by construction), then a generic LU solve, and finally
    least squares when the matrix is numerically singular, which can
    happen when subpopulations coincide exactly.
    """
    vec = np.asarray(rhs, dtype=float)
    mat = _prepare_spd(matrix, ridge)
    if vec.shape[0] != mat.shape[0]:
        raise SolverError(
            f"rhs length {vec.shape[0]} does not match matrix size {mat.shape[0]}"
        )
    try:
        factor = scipy_linalg.cho_factor(mat, lower=True)
        return scipy_linalg.cho_solve(factor, vec)
    except (np.linalg.LinAlgError, scipy_linalg.LinAlgError, ValueError):
        pass
    try:
        return np.linalg.solve(mat, vec)
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(mat, vec, rcond=None)
        return solution


def project_to_simplex_nonneg(weights: np.ndarray) -> np.ndarray:
    """Clip to the non-negative orthant and rescale the total mass to 1.

    Not a true Euclidean simplex projection -- it matches what the paper's
    pragmatic treatment needs: negative weights are artefacts of dropping
    the positivity constraint and should simply be removed.
    """
    clipped = np.clip(np.asarray(weights, dtype=float), 0.0, None)
    total = clipped.sum()
    if total <= 0:
        raise SolverError("cannot renormalise a weight vector with no positive mass")
    return clipped / total


def cholesky_update(factor: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Rank-k update of a lower Cholesky factor: ``L'L'ᵀ = LLᵀ + rowsᵀrows``.

    ``rows`` is a ``(k, m)`` block of new constraint rows (already scaled
    by ``sqrt(λ)`` for the penalised normal equations), applied as ``k``
    sequential rank-1 Givens sweeps — the classic ``cholupdate`` with the
    column tail vectorised.  Updates are always *positive* (we only ever
    add observations), so the factor cannot lose positive definiteness in
    exact arithmetic; a numerical breakdown raises :class:`SolverError`
    so the caller can refactorise from the accumulated normal matrix.

    Returns a new array; the input factor is left untouched.
    """
    L = np.array(factor, dtype=float, copy=True)
    if L.ndim != 2 or L.shape[0] != L.shape[1]:
        raise SolverError(f"factor must be square; got shape {L.shape}")
    update = np.atleast_2d(np.asarray(rows, dtype=float))
    if update.shape[1] != L.shape[0]:
        raise SolverError(
            f"update rows must have {L.shape[0]} columns; got {update.shape}"
        )
    m = L.shape[0]
    for vector in update:
        w = vector.copy()
        for j in range(m):
            ljj = L[j, j]
            wj = w[j]
            if wj == 0.0:
                continue
            r = np.hypot(ljj, wj)
            if not np.isfinite(r) or r <= 0.0 or ljj <= 0.0:
                raise SolverError("cholesky update broke down; refactorise")
            c = r / ljj
            s = wj / ljj
            L[j, j] = r
            if j + 1 < m:
                tail = (L[j + 1 :, j] + s * w[j + 1 :]) / c
                w[j + 1 :] = c * w[j + 1 :] - s * tail
                L[j + 1 :, j] = tail
    return L


def cholesky_downdate(factor: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Rank-k downdate of a lower Cholesky factor: ``L'L'ᵀ = LLᵀ - rowsᵀrows``.

    The mirror of :func:`cholesky_update` for *removing* constraint rows
    (streaming-window training evicting expired feedback): ``k``
    sequential rank-1 hyperbolic-rotation sweeps with the column tail
    vectorised.  Unlike updates, downdates can destroy positive
    definiteness — the downdated matrix is only SPD if the removed rows
    were actually part of it, and even then accumulated float error can
    push a pivot below zero.  The standard guard applies: each pivot
    must satisfy ``L[j,j]² - w[j]² > 0``; a violation (or any
    non-finite intermediate) raises :class:`SolverError` so the caller
    refactorises from the surviving rows instead.

    Returns a new array; the input factor is left untouched.
    """
    L = np.array(factor, dtype=float, copy=True)
    if L.ndim != 2 or L.shape[0] != L.shape[1]:
        raise SolverError(f"factor must be square; got shape {L.shape}")
    update = np.atleast_2d(np.asarray(rows, dtype=float))
    if update.shape[1] != L.shape[0]:
        raise SolverError(
            f"downdate rows must have {L.shape[0]} columns; got {update.shape}"
        )
    m = L.shape[0]
    for vector in update:
        w = vector.copy()
        for j in range(m):
            ljj = L[j, j]
            wj = w[j]
            if wj == 0.0:
                continue
            # (ljj - wj)(ljj + wj) is the numerically kinder form of
            # ljj² - wj²; non-positive means the downdate would leave
            # the matrix indefinite — the PD guard.
            r2 = (ljj - wj) * (ljj + wj)
            if not np.isfinite(r2) or r2 <= 0.0 or ljj <= 0.0:
                raise SolverError("cholesky downdate lost positive definiteness; refactorise")
            r = np.sqrt(r2)
            c = r / ljj
            s = wj / ljj
            L[j, j] = r
            if j + 1 < m:
                tail = (L[j + 1 :, j] - s * w[j + 1 :]) / c
                w[j + 1 :] = c * w[j + 1 :] - s * tail
                L[j + 1 :, j] = tail
    return L


class CachedCholesky:
    """A reusable Cholesky factorisation of a growing SPD normal matrix.

    The incremental trainer keeps one of these per model: a full
    :meth:`factorize` at (re)build time, then :meth:`modify_rows` folds
    each refit's ``Δn`` new constraint rows in — and, under a sliding
    training window, the expired rows *out* (rank-k downdate) — in
    ``O((Δn_in + Δn_out)·m²)`` instead of the ``O(m³)`` refactorisation.

    :meth:`modify_rows` *declines* (returns False, leaving the factor
    untouched) when the caller should refactorise instead:

    * the Python-level rank-1 sweeps would be slower than refactorising.
      The update+downdate pair is priced together: ``k = k_in + k_out``
      sweeps cost ``k·m`` small numpy operations, each worth about
      ``update_cost_ratio`` BLAS flops; refactorising costs ``m³/3``
      flops *plus whatever it takes the caller to rebuild the matrix* —
      the trainer passes ``history_rows = n`` so the ``O(n·m²)``
      normal-equation gemm its refactorisation implies is priced in.
      The crossover is ``k · update_cost_ratio > m²/3 + history_rows·m``:
      at small ``m`` and short history a fresh BLAS factorisation wins;
      as the stream (or window) grows the rank-k path takes over and
      per-refit cost stops scaling with ``n``.
    * the modified factor's diagonal-based condition estimate exceeds
      ``condition_limit`` (accumulated update/downdate error is no
      longer safely bounded), or
    * a sweep breaks down numerically — which a downdate can do even in
      exact arithmetic if asked to remove rows the matrix never
      contained (the positive-definiteness guard).

    The ``refactorizations``/``rank_updates``/``rank_downdates``
    counters make the chosen path observable to tests and benchmarks.
    """

    def __init__(
        self,
        condition_limit: float = 1.0e13,
        update_cost_ratio: float = 3.0e5,
    ) -> None:
        if condition_limit <= 0:
            raise SolverError("condition_limit must be positive")
        if update_cost_ratio <= 0:
            raise SolverError("update_cost_ratio must be positive")
        self._condition_limit = float(condition_limit)
        self._update_cost_ratio = float(update_cost_ratio)
        self._factor: np.ndarray | None = None
        self.refactorizations = 0
        self.rank_updates = 0
        self.rank_downdates = 0

    @property
    def available(self) -> bool:
        """True if a factor is cached and usable for solves/updates."""
        return self._factor is not None

    def invalidate(self) -> None:
        """Drop the cached factor (e.g. after a subpopulation rebuild)."""
        self._factor = None

    def factorize(self, matrix: np.ndarray, ridge: float = 0.0) -> None:
        """Fully factorise ``symmetrize(matrix) + ridge·I``.

        Raises :class:`SolverError` when the matrix is not numerically
        positive definite (the caller falls back to
        :func:`regularized_solve`).
        """
        mat = _prepare_spd(matrix, ridge)
        try:
            raw, _ = scipy_linalg.cho_factor(mat, lower=True)
        except (np.linalg.LinAlgError, scipy_linalg.LinAlgError, ValueError) as error:
            self._factor = None
            raise SolverError(f"normal matrix is not positive definite: {error}")
        # cho_factor leaves garbage above the diagonal; the update sweeps
        # need a clean lower triangle.
        self._factor = np.tril(raw)
        self.refactorizations += 1

    def update_rows(self, rows: np.ndarray, history_rows: int = 0) -> bool:
        """Fold ``(k, m)`` new rows into the factor; False = refactorise.

        Equivalent to :meth:`modify_rows` with no removed rows — kept as
        the named entry point for the append-only (unbounded) stream.
        """
        return self.modify_rows(rows, None, history_rows=history_rows)

    def downdate_rows(self, rows: np.ndarray, history_rows: int = 0) -> bool:
        """Fold ``(k, m)`` expired rows out of the factor; False = refactorise.

        Equivalent to :meth:`modify_rows` with no added rows.
        """
        return self.modify_rows(None, rows, history_rows=history_rows)

    def modify_rows(
        self,
        added: np.ndarray | None,
        removed: np.ndarray | None,
        history_rows: int = 0,
    ) -> bool:
        """Fold an update+downdate pair into the factor; False = refactorise.

        ``added`` are the refit's new constraint rows, ``removed`` the
        rows a sliding training window just evicted (either may be None
        or empty).  The pair is priced as one decision — ``k = k_in +
        k_out`` rank-1 sweeps against one refactorisation — because the
        caller either keeps the cached factor consistent with the whole
        window move or rebuilds it once; updates apply before downdates
        so the intermediate matrix stays maximal (downdating first could
        lose positive definiteness transiently even when the final
        matrix is SPD).

        ``history_rows`` is the number of rows the caller would have to
        re-aggregate (one ``O(history_rows·m²)`` gemm) if this
        modification is declined; it raises the refactorisation's priced
        cost so long streams/windows favour the rank-k path.

        On False the cached factor is unchanged if the decline was a cost
        or condition decision, and invalidated if a sweep broke down —
        including a downdate's positive-definiteness guard firing.
        """
        if self._factor is None:
            return False
        m = self._factor.shape[0]
        update = self._as_rows(added, m)
        downdate = self._as_rows(removed, m)
        if update is None or downdate is None:
            return False
        k = update.shape[0] + downdate.shape[0]
        if k == 0:
            return True
        # Cost crossover (see class docstring): k·m Python-level sweep
        # iterations at ~update_cost_ratio flops-equivalent each, vs. an
        # O(m³/3) BLAS refactorisation plus the caller's O(n·m²) matrix
        # rebuild.
        if k * self._update_cost_ratio > m * m / 3 + history_rows * m:
            return False
        try:
            modified = self._factor
            if update.shape[0]:
                modified = cholesky_update(modified, update)
            if downdate.shape[0]:
                modified = cholesky_downdate(modified, downdate)
        except SolverError:
            self._factor = None
            return False
        diagonal = np.diag(modified)
        smallest = float(diagonal.min())
        largest = float(diagonal.max())
        if smallest <= 0.0 or (largest / smallest) ** 2 > self._condition_limit:
            return False
        self._factor = modified
        if update.shape[0]:
            self.rank_updates += 1
        if downdate.shape[0]:
            self.rank_downdates += 1
        return True

    @staticmethod
    def _as_rows(rows: np.ndarray | None, m: int) -> np.ndarray | None:
        """Normalise an optional row block; None = shape mismatch (decline)."""
        if rows is None:
            return np.zeros((0, m))
        block = np.asarray(rows, dtype=float)
        if block.size == 0:
            return np.zeros((0, m))
        block = np.atleast_2d(block)
        if block.shape[1] != m:
            return None
        return block

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against the cached factor."""
        if self._factor is None:
            raise SolverError("no factorization cached; call factorize() first")
        vec = np.asarray(rhs, dtype=float)
        if vec.shape[0] != self._factor.shape[0]:
            raise SolverError(
                f"rhs length {vec.shape[0]} does not match factor size "
                f"{self._factor.shape[0]}"
            )
        return scipy_linalg.cho_solve((self._factor, True), vec)
