"""Closed-form solver for QuickSel's penalised quadratic program.

Problem 3 of the paper replaces the equality constraints ``A w = s`` of
Theorem 1 by a quadratic penalty and drops the positivity constraint:

``min_w  wᵀ Q w + λ ‖A w − s‖²``

Setting the gradient to zero gives the normal equations

``(Q + λ AᵀA) w = λ Aᵀ s``

whose solution is a single dense solve -- this is the source of QuickSel's
constant, milliseconds-scale refinement cost and the subject of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SolverError
from repro.solvers.linalg import regularized_solve, symmetrize

__all__ = ["AnalyticSolution", "solve_penalized_qp"]


@dataclass(frozen=True)
class AnalyticSolution:
    """Result of the analytic solve.

    Attributes:
        weights: the unconstrained minimiser ``w*``.
        constraint_residual: ``max_i |(A w* − s)_i|`` — how far the model
            is from exactly reproducing the observed selectivities.
        objective: value of the penalised objective at ``w*``.
    """

    weights: np.ndarray
    constraint_residual: float
    objective: float


def solve_penalized_qp(
    Q: np.ndarray,
    A: np.ndarray,
    s: np.ndarray,
    penalty: float = 1.0e6,
    ridge: float = 1.0e-9,
) -> AnalyticSolution:
    """Solve ``min_w wᵀQw + λ‖Aw − s‖²`` in closed form.

    Args:
        Q: ``(m, m)`` overlap matrix of Theorem 1.
        A: ``(n, m)`` constraint matrix of Theorem 1.
        s: length-``n`` vector of observed selectivities.
        penalty: λ of Problem 3 (paper default ``1e6``).
        ridge: small diagonal regulariser for numerical stability; scaled
            by the penalty so its relative size is independent of λ.

    Returns:
        An :class:`AnalyticSolution` with the optimal weights and
        diagnostics.
    """
    Q = symmetrize(np.asarray(Q, dtype=float))
    A = np.asarray(A, dtype=float)
    s = np.asarray(s, dtype=float)
    m = Q.shape[0]
    if A.ndim != 2 or A.shape[1] != m:
        raise SolverError(
            f"A must have shape (n, {m}); got {A.shape}"
        )
    if s.shape != (A.shape[0],):
        raise SolverError(
            f"s must have length {A.shape[0]}; got shape {s.shape}"
        )
    if penalty <= 0:
        raise SolverError("penalty must be positive")

    normal_matrix = Q + penalty * (A.T @ A)
    rhs = penalty * (A.T @ s)
    weights = regularized_solve(normal_matrix, rhs, ridge=ridge * max(penalty, 1.0))

    residual_vector = A @ weights - s
    residual = float(np.abs(residual_vector).max()) if residual_vector.size else 0.0
    objective = float(
        weights @ Q @ weights + penalty * float(residual_vector @ residual_vector)
    )
    return AnalyticSolution(
        weights=weights, constraint_residual=residual, objective=objective
    )
