"""Iterative projected-gradient solver for the constrained QP of Theorem 1.

This plays the role of the "Standard QP" baseline in Figure 6 of the
paper (there solved with cvxopt): it solves

``min_w  wᵀ Q w   s.t.  A w = s,  w ≥ 0``

by running projected gradient descent on the penalised objective
``wᵀQw + λ‖Aw − s‖²`` with an explicit projection onto the non-negative
orthant after each step.  Compared to the analytic solution it does the
same linear algebra many times over, which is exactly the gap Figure 6
measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SolverError
from repro.solvers.linalg import symmetrize

__all__ = ["ProjectedGradientResult", "solve_projected_gradient"]


@dataclass(frozen=True)
class ProjectedGradientResult:
    """Result of the projected-gradient solve.

    Attributes:
        weights: final iterate (non-negative).
        iterations: number of gradient steps taken.
        converged: True if the relative change dropped below tolerance.
        constraint_residual: ``max_i |(A w − s)_i|`` at the final iterate.
    """

    weights: np.ndarray
    iterations: int
    converged: bool
    constraint_residual: float


def solve_projected_gradient(
    Q: np.ndarray,
    A: np.ndarray,
    s: np.ndarray,
    penalty: float = 1.0e6,
    max_iterations: int = 2000,
    tolerance: float = 1.0e-8,
    initial: np.ndarray | None = None,
    gram: np.ndarray | None = None,
    rhs: np.ndarray | None = None,
) -> ProjectedGradientResult:
    """Solve the penalised QP iteratively with non-negativity projection.

    The step size is set from the Lipschitz constant of the gradient
    (twice the largest eigenvalue of ``Q + λAᵀA``), so the iteration is a
    plain, provably-convergent projected gradient method.

    Callers that maintain the normal-equation accumulators incrementally
    (the :class:`~repro.core.incremental.IncrementalTrainer`) can pass
    ``gram = Q + λAᵀA`` and ``rhs = λAᵀs`` to skip the ``O(n·m²)``
    re-aggregation over the full constraint history; ``initial`` warm-
    starts the iteration from a previous solution.
    """
    Q = symmetrize(np.asarray(Q, dtype=float))
    A = np.asarray(A, dtype=float)
    s = np.asarray(s, dtype=float)
    m = Q.shape[0]
    if A.ndim != 2 or A.shape[1] != m:
        raise SolverError(f"A must have shape (n, {m}); got {A.shape}")
    if s.shape != (A.shape[0],):
        raise SolverError(f"s must have length {A.shape[0]}; got shape {s.shape}")
    if penalty <= 0:
        raise SolverError("penalty must be positive")
    if max_iterations < 1:
        raise SolverError("max_iterations must be >= 1")

    if (gram is None) != (rhs is None):
        raise SolverError("gram and rhs must be provided together")
    if gram is not None and rhs is not None:
        hessian = symmetrize(np.asarray(gram, dtype=float))
        rhs = np.asarray(rhs, dtype=float)
        if hessian.shape != (m, m):
            raise SolverError(
                f"gram must have shape ({m}, {m}); got {hessian.shape}"
            )
        if rhs.shape != (m,):
            raise SolverError(f"rhs must have shape ({m},); got {rhs.shape}")
    else:
        hessian = Q + penalty * (A.T @ A)
        rhs = penalty * (A.T @ s)

    # Lipschitz constant of the gradient 2 H w - 2 rhs.
    try:
        lipschitz = float(np.linalg.eigvalsh(hessian).max())
    except np.linalg.LinAlgError:
        lipschitz = float(np.abs(hessian).sum(axis=1).max())
    if lipschitz <= 0:
        lipschitz = 1.0
    step = 1.0 / (2.0 * lipschitz)

    if initial is None:
        weights = np.full(m, 1.0 / m)
    else:
        weights = np.clip(np.asarray(initial, dtype=float).copy(), 0.0, None)
        if weights.shape != (m,):
            raise SolverError(f"initial must have shape ({m},)")

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        gradient = 2.0 * (hessian @ weights - rhs)
        updated = np.clip(weights - step * gradient, 0.0, None)
        change = np.abs(updated - weights).max()
        scale = max(np.abs(updated).max(), 1.0)
        weights = updated
        if change <= tolerance * scale:
            converged = True
            break

    residual_vector = A @ weights - s
    residual = float(np.abs(residual_vector).max()) if residual_vector.size else 0.0
    return ProjectedGradientResult(
        weights=weights,
        iterations=iteration,
        converged=converged,
        constraint_residual=residual,
    )
