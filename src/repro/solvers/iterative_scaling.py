"""Iterative scaling / iterative proportional fitting for max-entropy histograms.

This is the optimisation substrate of the ISOMER baseline (and of the
other max-entropy query-driven histograms the paper compares against).
Given

* disjoint histogram buckets with volumes ``|G_j|``,
* a 0/1 membership matrix ``A`` where ``A[i, j] = 1`` iff bucket ``j``
  lies entirely inside predicate ``i`` (the assumption Appendix B shows
  iterative scaling relies on), and
* observed selectivities ``s_i``,

the algorithm finds bucket frequencies ``w_j ≥ 0`` that satisfy
``A w = s`` while maximising the entropy of the implied density
(equivalently, minimising KL divergence from the uniform distribution).
The implementation is classic iterative proportional fitting: cycle over
constraints and rescale the frequencies inside / outside each predicate
to match the observed selectivity.

The per-sweep cost is ``O(n · m)`` -- linear in the number of buckets ``m``,
which is exactly why the bucket explosion documented in Section 2.3 makes
ISOMER slow, and what Figure 3/Table 3 measure against QuickSel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SolverError

__all__ = ["IterativeScalingResult", "solve_iterative_scaling"]


@dataclass(frozen=True)
class IterativeScalingResult:
    """Result of iterative scaling.

    Attributes:
        frequencies: bucket frequencies ``w_j`` (non-negative, summing to
            the total-mass constraint when one is provided).
        iterations: number of full sweeps over the constraints.
        converged: True if the maximum constraint violation fell below
            tolerance.
        max_violation: largest ``|Σ_{j∈C_i} w_j − s_i|`` at termination.
    """

    frequencies: np.ndarray
    iterations: int
    converged: bool
    max_violation: float


def solve_iterative_scaling(
    membership: np.ndarray,
    selectivities: np.ndarray,
    volumes: np.ndarray,
    max_iterations: int = 200,
    tolerance: float = 1.0e-6,
) -> IterativeScalingResult:
    """Fit max-entropy bucket frequencies consistent with observed queries.

    Args:
        membership: ``(n, m)`` 0/1 matrix; entry ``(i, j)`` is 1 iff bucket
            ``j`` is fully contained in predicate ``i``.  Fractional values
            are rejected, mirroring the assumption analysed in Appendix B.
        selectivities: length-``n`` observed selectivities in ``[0, 1]``.
        volumes: length-``m`` bucket volumes, used to seed the frequencies
            proportionally to volume (the max-entropy prior).
        max_iterations: maximum number of sweeps.
        tolerance: convergence threshold on the constraint violation.

    Returns:
        An :class:`IterativeScalingResult`.
    """
    A = np.asarray(membership, dtype=float)
    s = np.asarray(selectivities, dtype=float)
    vol = np.asarray(volumes, dtype=float)
    if A.ndim != 2:
        raise SolverError("membership must be a 2-D matrix")
    n, m = A.shape
    if s.shape != (n,):
        raise SolverError(f"selectivities must have length {n}; got {s.shape}")
    if vol.shape != (m,):
        raise SolverError(f"volumes must have length {m}; got {vol.shape}")
    if ((A != 0.0) & (A != 1.0)).any():
        raise SolverError(
            "iterative scaling requires buckets to be fully inside or fully "
            "outside each predicate (0/1 membership); see Appendix B"
        )
    if (s < -1e-12).any() or (s > 1.0 + 1e-12).any():
        raise SolverError("selectivities must lie in [0, 1]")
    if (vol <= 0).any():
        raise SolverError("bucket volumes must be strictly positive")

    # Max-entropy prior: frequencies proportional to bucket volume.
    frequencies = vol / vol.sum()
    inside = A.astype(bool)

    converged = False
    iteration = 0
    max_violation = _max_violation(inside, frequencies, s)
    for iteration in range(1, max_iterations + 1):
        for i in range(n):
            in_mask = inside[i]
            target = s[i]
            current_in = frequencies[in_mask].sum()
            current_out = frequencies[~in_mask].sum()
            # Rescale the two groups so the constraint holds exactly while
            # preserving relative proportions within each group -- the IPF
            # update, which keeps the solution in the max-entropy family.
            if current_in > 0 and target > 0:
                frequencies[in_mask] *= target / current_in
            elif target == 0:
                frequencies[in_mask] = 0.0
            elif current_in == 0 and target > 0 and in_mask.any():
                # Re-seed mass uniformly over member buckets (weighted by
                # volume) when the group has been zeroed out earlier.
                member_volumes = vol[in_mask]
                frequencies[in_mask] = target * member_volumes / member_volumes.sum()
            remaining = 1.0 - target
            if current_out > 0 and remaining > 0:
                frequencies[~in_mask] *= remaining / current_out
            elif remaining <= 0:
                frequencies[~in_mask] = 0.0
        max_violation = _max_violation(inside, frequencies, s)
        if max_violation <= tolerance:
            converged = True
            break

    return IterativeScalingResult(
        frequencies=np.clip(frequencies, 0.0, None),
        iterations=iteration,
        converged=converged,
        max_violation=max_violation,
    )


def _max_violation(
    inside: np.ndarray, frequencies: np.ndarray, selectivities: np.ndarray
) -> float:
    """Largest absolute constraint violation over all observed queries."""
    if inside.shape[0] == 0:
        return 0.0
    estimated = inside @ frequencies
    return float(np.abs(estimated - selectivities).max())
