"""Numerical solvers used by QuickSel and the baseline estimators.

* :mod:`repro.solvers.analytic` — closed-form solution of Problem 3 (the
  paper's fast path).
* :mod:`repro.solvers.projected_gradient` — iterative QP baseline used as
  the "Standard QP" comparator of Figure 6.
* :mod:`repro.solvers.scipy_qp` — constrained SLSQP solve of Theorem 1
  (correctness oracle).
* :mod:`repro.solvers.iterative_scaling` — iterative proportional fitting
  used by the max-entropy histogram baselines (ISOMER).
"""

from repro.solvers.analytic import AnalyticSolution, solve_penalized_qp
from repro.solvers.iterative_scaling import (
    IterativeScalingResult,
    solve_iterative_scaling,
)
from repro.solvers.linalg import (
    CachedCholesky,
    cholesky_update,
    project_to_simplex_nonneg,
    regularized_solve,
    symmetrize,
)
from repro.solvers.projected_gradient import (
    ProjectedGradientResult,
    solve_projected_gradient,
)
from repro.solvers.scipy_qp import ScipyQPResult, solve_constrained_qp

__all__ = [
    "AnalyticSolution",
    "solve_penalized_qp",
    "ProjectedGradientResult",
    "solve_projected_gradient",
    "ScipyQPResult",
    "solve_constrained_qp",
    "IterativeScalingResult",
    "solve_iterative_scaling",
    "symmetrize",
    "regularized_solve",
    "project_to_simplex_nonneg",
    "cholesky_update",
    "CachedCholesky",
]
