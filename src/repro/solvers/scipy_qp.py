"""SciPy-backed solver for the constrained QP of Theorem 1.

Solves

``min_w  wᵀ Q w   s.t.  A w = s,  w ≥ 0``

with :func:`scipy.optimize.minimize` (SLSQP).  It is the slowest of the
three solvers but honours the constraints exactly (up to solver
tolerance) and therefore serves both as a correctness oracle in the tests
and as a second point on the Figure 6 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.exceptions import SolverError
from repro.solvers.linalg import symmetrize

__all__ = ["ScipyQPResult", "solve_constrained_qp"]


@dataclass(frozen=True)
class ScipyQPResult:
    """Result of the SciPy constrained solve.

    Attributes:
        weights: optimal weights (non-negative, ``A w ≈ s``).
        converged: whether SLSQP reported success.
        iterations: SLSQP iteration count.
        constraint_residual: ``max_i |(A w − s)_i|`` at the solution.
    """

    weights: np.ndarray
    converged: bool
    iterations: int
    constraint_residual: float


def solve_constrained_qp(
    Q: np.ndarray,
    A: np.ndarray,
    s: np.ndarray,
    max_iterations: int = 500,
    tolerance: float = 1.0e-10,
    initial: np.ndarray | None = None,
) -> ScipyQPResult:
    """Solve Theorem 1's QP with equality and positivity constraints.

    ``initial`` warm-starts SLSQP (``x0``) from a previous solution; it is
    clipped to the positivity bounds before use.
    """
    Q = symmetrize(np.asarray(Q, dtype=float))
    A = np.asarray(A, dtype=float)
    s = np.asarray(s, dtype=float)
    m = Q.shape[0]
    if A.ndim != 2 or A.shape[1] != m:
        raise SolverError(f"A must have shape (n, {m}); got {A.shape}")
    if s.shape != (A.shape[0],):
        raise SolverError(f"s must have length {A.shape[0]}; got shape {s.shape}")

    def objective(w: np.ndarray) -> float:
        return float(w @ Q @ w)

    def gradient(w: np.ndarray) -> np.ndarray:
        return 2.0 * (Q @ w)

    constraints = [
        {
            "type": "eq",
            "fun": lambda w: A @ w - s,
            "jac": lambda w: A,
        }
    ]
    bounds = [(0.0, None)] * m
    if initial is not None:
        initial = np.asarray(initial, dtype=float)
        if initial.shape != (m,):
            raise SolverError(f"initial must have shape ({m},)")
        initial = np.clip(initial, 0.0, None)
    else:
        initial = np.full(m, max(float(s.mean()) if s.size else 1.0, 1.0e-6))

    result = optimize.minimize(
        objective,
        initial,
        jac=gradient,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": tolerance},
    )

    weights = np.clip(np.asarray(result.x, dtype=float), 0.0, None)
    residual_vector = A @ weights - s
    residual = float(np.abs(residual_vector).max()) if residual_vector.size else 0.0
    return ScipyQPResult(
        weights=weights,
        converged=bool(result.success),
        iterations=int(result.get("nit", 0)),
        constraint_residual=residual,
    )
