"""Quickstart: learn selectivities from query feedback with QuickSel.

This is the smallest end-to-end use of the library:

1. create a data domain and a QuickSel estimator,
2. feed it (predicate, true selectivity) pairs as queries "execute",
3. ask it to estimate the selectivity of new predicates.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Hyperrectangle, QuickSel, QuickSelConfig, box_predicate
from repro.workloads.synthetic import gaussian_dataset


def main() -> None:
    # A 2-column table whose joint distribution is a correlated Gaussian.
    dataset = gaussian_dataset(row_count=50_000, correlation=0.6, seed=0)
    data = dataset.rows
    domain: Hyperrectangle = dataset.domain

    estimator = QuickSel(domain, QuickSelConfig(random_seed=0))
    rng = np.random.default_rng(1)

    # Simulate a running workload: each executed query reports the
    # selectivity the engine actually observed.
    print("Observing 80 queries ...")
    for _ in range(80):
        low = rng.uniform(0.0, 0.6, size=2)
        high = np.minimum(low + rng.uniform(0.15, 0.45, size=2), 1.0)
        predicate = box_predicate([(0, low[0], high[0]), (1, low[1], high[1])])
        true_selectivity = predicate.selectivity(data)
        estimator.observe(predicate, true_selectivity)

    stats = estimator.refit()
    print(
        f"Model refit: {stats.subpopulations} subpopulations, "
        f"{stats.total_seconds * 1000:.1f} ms, "
        f"constraint residual {stats.constraint_residual:.2e}"
    )

    # Estimate selectivities of unseen predicates and compare to the truth.
    print("\npredicate                          true    estimate")
    for _ in range(8):
        low = rng.uniform(0.0, 0.6, size=2)
        high = np.minimum(low + rng.uniform(0.15, 0.45, size=2), 1.0)
        predicate = box_predicate([(0, low[0], high[0]), (1, low[1], high[1])])
        truth = predicate.selectivity(data)
        estimate = estimator.estimate(predicate)
        label = (
            f"[{low[0]:.2f},{high[0]:.2f}] x [{low[1]:.2f},{high[1]:.2f}]"
        )
        print(f"{label:34s} {truth:6.4f}  {estimate:6.4f}")


if __name__ == "__main__":
    main()
