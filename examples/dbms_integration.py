"""DBMS integration: the selectivity-learning loop inside a query engine.

Reproduces the integration story of Section 6 of the paper with the
in-package engine substrate:

1. a typed table (Instacart-like orders) is registered with an executor,
2. every executed filter reports its actual selectivity to the catalog,
3. a FeedbackLoop forwards that feedback to QuickSel,
4. the cost-based access-path optimizer uses QuickSel's estimates to choose
   between a sequential scan and an index range scan — and its choices are
   compared against the oracle (true-selectivity) plans before and after
   learning.

Run with:  python examples/dbms_integration.py
"""

from __future__ import annotations

from repro.core.config import QuickSelConfig
from repro.core.quicksel import QuickSel
from repro.engine import (
    AccessPathOptimizer,
    Catalog,
    Executor,
    FeedbackLoop,
    QueryBuilder,
)
from repro.workloads.instacart import instacart_table
from repro.workloads.queries import instacart_queries


def plan_agreement(optimizer, executor, builder, table, predicates) -> float:
    """Fraction of queries whose chosen plan matches the oracle plan."""
    agree = 0
    for predicate in predicates:
        truth = executor.true_selectivity(builder.query(table.name, predicate))
        chosen = optimizer.plan(predicate)
        oracle = optimizer.plan_with_true_selectivity(predicate, truth)
        agree += chosen.access_path == oracle.access_path
    return agree / len(predicates)


def main() -> None:
    table = instacart_table(50_000, seed=0)
    executor = Executor()
    executor.register_table(table)
    catalog = Catalog()
    catalog.analyze(table)

    estimator = QuickSel(table.domain(), QuickSelConfig(random_seed=0))
    loop = FeedbackLoop(executor, catalog)
    loop.register_estimator(table.name, estimator)

    builder = QueryBuilder(table.schema)
    optimizer = AccessPathOptimizer(table, estimator)
    optimizer.add_index("order_hour_of_day")

    workload = instacart_queries(80, seed=1)
    probes = instacart_queries(40, seed=2)

    before = plan_agreement(optimizer, executor, builder, table, probes)
    print(f"Plan/oracle agreement before any feedback: {before:5.1%}")

    print(f"Executing {len(workload)} queries (each reports its true selectivity)...")
    for predicate in workload:
        executor.execute(builder.query(table.name, predicate))
    estimator.refit()
    print(
        f"QuickSel observed {estimator.observed_count} queries, "
        f"model has {estimator.parameter_count} parameters"
    )

    after = plan_agreement(optimizer, executor, builder, table, probes)
    print(f"Plan/oracle agreement after learning:      {after:5.1%}")

    # Show a couple of concrete plans.
    print("\nSample plans (after learning):")
    for predicate in probes[:5]:
        plan = optimizer.plan(predicate)
        print(
            f"  est. selectivity {plan.estimated_selectivity:6.3f} -> "
            f"{plan.access_path:10s} (cost {plan.estimated_cost:,.0f} vs "
            f"alternative {plan.alternative_cost:,.0f})"
        )


if __name__ == "__main__":
    main()
