"""Join-size estimation on top of per-table QuickSel estimators.

The paper's future-work section points out that single-table selectivity
learning extends to joins when local predicates are independent of the join
condition.  This example builds two tables (orders and a per-hour promotion
calendar), trains one QuickSel instance per table from observed filters,
and compares the independence-based join-size estimate against the exact
hash-join count.

Run with:  python examples/join_estimation.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import QuickSelConfig
from repro.core.quicksel import QuickSel
from repro.engine import (
    Column,
    ColumnType,
    Executor,
    JoinSizeEstimator,
    QueryBuilder,
    Schema,
    Table,
    exact_join_size,
)
from repro.workloads.instacart import instacart_table


def main() -> None:
    rng = np.random.default_rng(0)

    # Fact table: Instacart-like orders (order_hour_of_day, days_since_prior).
    orders = instacart_table(40_000, seed=0)

    # Dimension table: one promotion row per hour-of-day with an intensity.
    promo_schema = Schema(
        [
            Column("hour", ColumnType.INTEGER, 0, 23),
            Column("discount_pct", ColumnType.REAL, 0.0, 50.0),
        ]
    )
    promotions = Table("promotions", promo_schema)
    promotions.insert(
        np.stack(
            [np.arange(24, dtype=float), rng.uniform(0.0, 50.0, size=24)], axis=1
        )
    )

    executor = Executor()
    executor.register_table(orders)
    executor.register_table(promotions)

    orders_builder = QueryBuilder(orders.schema)
    promo_builder = QueryBuilder(promo_schema)

    # Train a QuickSel estimator per table from observed filter queries.
    orders_estimator = QuickSel(orders.domain(), QuickSelConfig(random_seed=0))
    promo_estimator = QuickSel(promotions.domain(), QuickSelConfig(random_seed=1))
    for low in range(0, 20, 2):
        predicate = orders_builder.range("order_hour_of_day", low, low + 6)
        truth = executor.true_selectivity(orders_builder.query("instacart_orders", predicate))
        orders_estimator.observe(predicate, truth)
    for low in range(0, 45, 5):
        predicate = promo_builder.range("discount_pct", low, low + 10)
        truth = executor.true_selectivity(promo_builder.query("promotions", predicate))
        promo_estimator.observe(predicate, truth)

    join_estimator = JoinSizeEstimator(
        orders, promotions, orders_estimator, promo_estimator
    )

    print("join: orders.order_hour_of_day = promotions.hour")
    print(f"{'orders filter':28s} {'promo filter':24s} {'estimated':>12s} {'exact':>12s}")
    scenarios = [
        (None, None, "(none)", "(none)"),
        (
            orders_builder.range("order_hour_of_day", 8, 12),
            None,
            "hour in [8, 12]",
            "(none)",
        ),
        (
            orders_builder.range("days_since_prior", 0, 7),
            promo_builder.range("discount_pct", 20, 50),
            "days_since_prior <= 7",
            "discount >= 20",
        ),
    ]
    for left_pred, right_pred, left_label, right_label in scenarios:
        estimate = join_estimator.estimate(
            "order_hour_of_day", "hour", left_pred, right_pred
        )
        exact = exact_join_size(
            orders, promotions, "order_hour_of_day", "hour", left_pred, right_pred
        )
        print(
            f"{left_label:28s} {right_label:24s} {estimate.estimated_rows:12,.0f} "
            f"{exact:12,d}"
        )


if __name__ == "__main__":
    main()
