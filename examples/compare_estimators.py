"""Compare QuickSel against the paper's baselines on the DMV-like workload.

Trains every query-driven estimator (QuickSel, STHoles, ISOMER, ISOMER+QP,
QueryModel) on the same stream of observed queries over the synthetic DMV
stand-in, plus the scan-based AutoHist/AutoSample/KDE estimators built from
the data itself, then reports error, model size, and training time — a
miniature version of the paper's Figure 3 / Figure 4 / Figure 5 story.

Run with:  python examples/compare_estimators.py
"""

from __future__ import annotations

import time

from repro.core.config import QuickSelConfig
from repro.core.quicksel import QuickSel
from repro.estimators import (
    AutoHist,
    AutoSample,
    Isomer,
    IsomerQP,
    KDEEstimator,
    QueryModel,
    STHoles,
)
from repro.experiments.datasets import make_bundle
from repro.experiments.harness import evaluate
from repro.experiments.reporting import format_table


def main() -> None:
    bundle = make_bundle("dmv", train_queries=60, test_queries=80, row_count=60_000)
    print(
        f"DMV stand-in: {bundle.row_count} rows, {len(bundle.train)} training "
        f"queries, {len(bundle.test)} test queries\n"
    )

    rows = []

    query_driven = {
        "QuickSel": QuickSel(bundle.domain, QuickSelConfig(random_seed=0)),
        "STHoles": STHoles(bundle.domain, max_buckets=2000),
        "ISOMER": Isomer(bundle.domain),
        "ISOMER+QP": IsomerQP(bundle.domain),
        "QueryModel": QueryModel(bundle.domain),
    }
    for name, estimator in query_driven.items():
        start = time.perf_counter()
        for predicate, selectivity in bundle.train:
            estimator.observe(predicate, selectivity)
        if isinstance(estimator, QuickSel):
            estimator.refit()
        train_seconds = time.perf_counter() - start
        relative, absolute, _ = evaluate(estimator, bundle.test)
        rows.append(
            {
                "method": name,
                "kind": "query-driven",
                "parameters": estimator.parameter_count,
                "rel_error_pct": relative,
                "abs_error": absolute,
                "train_seconds": train_seconds,
            }
        )

    scan_based = {
        "AutoHist": AutoHist(bundle.domain, lambda: bundle.rows, bucket_budget=1000),
        "AutoSample": AutoSample(bundle.domain, lambda: bundle.rows, sample_size=1000),
        "KDE": KDEEstimator(bundle.domain, lambda: bundle.rows, sample_size=1000),
    }
    for name, estimator in scan_based.items():
        start = time.perf_counter()
        estimator.refresh()
        train_seconds = time.perf_counter() - start
        relative, absolute, _ = evaluate(estimator, bundle.test)
        rows.append(
            {
                "method": name,
                "kind": "scan-based",
                "parameters": estimator.parameter_count,
                "rel_error_pct": relative,
                "abs_error": absolute,
                "train_seconds": train_seconds,
            }
        )

    print(format_table(rows, title="Estimator comparison on the DMV stand-in"))


if __name__ == "__main__":
    main()
