"""Data drift: query-driven learning vs periodically-refreshed scan statistics.

A condensed version of the paper's Figure 5 experiment: the table's joint
distribution drifts (the correlation between the two columns increases with
every batch of inserted rows) while a query stream runs.  AutoHist and
AutoSample refresh automatically when enough rows change; QuickSel learns
from the queries themselves.  The script prints the per-phase error of each
method and the total time each spent updating its statistics.

Run with:  python examples/workload_shift.py
"""

from __future__ import annotations

from repro.experiments.figure5 import run_figure5
from repro.experiments.reporting import format_table


def main() -> None:
    result = run_figure5(
        initial_rows=80_000,
        insert_rows=16_000,
        queries_per_phase=50,
        phases=8,
        parameter_budget=100,
        seed=0,
    )

    rows = []
    series = result.error_series()
    checkpoints = [x for x, _ in series["QuickSel"]]
    for index, checkpoint in enumerate(checkpoints):
        rows.append(
            {
                "queries_processed": int(checkpoint),
                "AutoHist_err_pct": series["AutoHist"][index][1],
                "AutoSample_err_pct": series["AutoSample"][index][1],
                "QuickSel_err_pct": series["QuickSel"][index][1],
            }
        )
    print(format_table(rows, title="Relative error over the drifting query stream"))

    print("\nMean error over the whole stream:")
    for method, error in result.mean_error_pct.items():
        print(f"  {method:10s} {error:6.2f} %")

    print("\nTotal statistics-update time:")
    for method, seconds in result.update_seconds.items():
        print(f"  {method:10s} {seconds * 1000:8.1f} ms")


if __name__ == "__main__":
    main()
