"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``).

All project metadata lives in ``pyproject.toml``; this file only exists so
that offline environments without the ``wheel`` package can still perform
an editable install through ``setup.py develop``.
"""

from setuptools import setup

setup()
